package yancfs

import (
	"errors"
	"strconv"
	"strings"
	"sync"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// matchFileNames caches the "match.<field>" file name for each
// canonical field so the hot path never rebuilds the string.
var matchFileNames = func() []string {
	names := make([]string, len(openflow.AllFields))
	for i, f := range openflow.AllFields {
		names[i] = MatchPrefix + f.Name()
	}
	return names
}()

// actionFileNames caches "action.<name>" per action kind the same way:
// hotalloc caught the per-action ActionPrefix+name concatenation this
// table replaces.
var actionFileNames = func() []string {
	names := make([]string, int(openflow.ActSetTPDst)+1)
	for t := range names {
		names[t] = ActionPrefix + openflow.Action{Type: openflow.ActionType(t)}.FileName()
	}
	return names
}()

// actionFileName returns the cached "action.<name>" for a's kind.
func actionFileName(a openflow.Action) string {
	if int(a.Type) < len(actionFileNames) {
		return actionFileNames[a.Type]
	}
	return ActionPrefix + "unknown"
}

// flowFiles renders the per-field files of a flow directory — match
// fields, action files, metadata, and the committed version — in the
// exact content format the file-I/O path produces.
//
// One arena backs every file's content: a single growing buffer holds
// each rendered value, and the FileData slices are cut from it at the
// end (spans are kept as offsets because append may move the backing
// array). The slices are capacity-clipped and marked Owned, so the
// file system adopts them without copying and a later in-place append
// on one file cannot bleed into the next.
// flowScratch recycles the per-flow rendering scratch. The FileData
// slice and span offsets die as soon as WriteTree returns (only the
// arena stays live, aliased by the new inodes), and a 1k-flow drain
// would otherwise retire ~1.5KB of garbage per flow.
var flowScratch = sync.Pool{New: func() any {
	return &flowScratchBuf{
		files: make([]vfs.FileData, 0, 16),
		spans: make([][2]int, 0, 16),
	}
}}

type flowScratchBuf struct {
	files []vfs.FileData
	spans [][2]int
}

//yancvet:hotalloc
func flowFiles(spec FlowSpec, version uint64) ([]vfs.FileData, *flowScratchBuf) {
	sc := flowScratch.Get().(*flowScratchBuf)
	files := sc.files[:0]
	spans := sc.spans[:0]
	arena := make([]byte, 0, 160) //yancvet:alloc the arena is adopted by the written inodes and must outlive the call
	mark := 0
	seal := func(name string) { // close out the value appended since mark
		arena = append(arena, '\n')
		spans = append(spans, [2]int{mark, len(arena)})
		files = append(files, vfs.FileData{Name: name, Owned: true})
		mark = len(arena)
	}
	for i, f := range openflow.AllFields {
		if spec.Match.Has(f) {
			arena = spec.Match.AppendField(arena, f)
			seal(matchFileNames[i])
		}
	}
	for _, a := range spec.Actions {
		arena = a.AppendFileValue(arena)
		seal(actionFileName(a))
	}
	arena = strconv.AppendUint(arena, uint64(spec.Priority), 10)
	seal(FilePriority)
	arena = strconv.AppendUint(arena, uint64(spec.IdleTimeout), 10)
	seal(FileIdleTimeout)
	arena = strconv.AppendUint(arena, uint64(spec.HardTimeout), 10)
	seal(FileHardTimeout)
	if spec.Cookie != 0 {
		arena = strconv.AppendUint(arena, spec.Cookie, 10)
		seal(FileCookie)
	}
	// version last, so the commit event trails the field events.
	arena = strconv.AppendUint(arena, version, 10)
	seal(FileVersion)
	for i := range files {
		s := spans[i]
		files[i].Data = arena[s[0]:s[1]:s[1]]
	}
	sc.files, sc.spans = files, spans
	return files, sc
}

// release returns the scratch to the pool once the FileData slice has
// been consumed (the arena itself stays live inside the new inodes).
func (sc *flowScratchBuf) release() {
	for i := range sc.files {
		sc.files[i] = vfs.FileData{} // drop arena references
	}
	flowScratch.Put(sc)
}

// PutFlowTx writes a complete flow — skeleton, match files, action files,
// metadata, and the committed version — inside an already-open
// transaction. This is the primitive behind libyanc's fastpath (§8.1):
// one lock acquisition and one event flush replace the dozens of
// open/write/close calls the file-I/O path performs, while producing an
// identical on-disk layout, so drivers cannot tell the difference.
//
// A fresh flow takes the WriteTree branch: every field file lands in one
// path resolution and one inode-map fill, which is what lets the libyanc
// ring clear its 10x-over-file-I/O throughput target at 1k switches.
func (y *FS) PutFlowTx(tx *vfs.Tx, flowPath string, spec FlowSpec) (uint64, error) {
	flowPath = vfs.Clean(flowPath)
	// Fresh flow first: the whole flow — field files, the counters
	// subdir with its two synthetic counter files, and the committed
	// version — lands in ONE WriteTree: one path resolution and one
	// inode slab, where the old shape paid five root walks (an Exists
	// probe, counters Mkdir, two SetSynthetic binds) per flow. An
	// existing flow surfaces as ErrExist and takes the rewrite branch.
	{
		switchPath := vfs.Dir(vfs.Dir(flowPath))
		flowName := vfs.Base(flowPath)
		files, sc := flowFiles(spec, 1)
		packets, bytes := y.flowCounterSynths(switchPath, flowName)
		counters := vfs.FileData{
			Name: "counters",
			Children: []vfs.FileData{
				{Name: "packets", Synth: packets, Mode: 0o444},
				{Name: "bytes", Synth: bytes, Mode: 0o444},
			},
		}
		// Keep version last so its commit event trails everything else.
		version := files[len(files)-1]
		files[len(files)-1] = counters
		files = append(files, version)
		err := tx.WriteTree(flowPath, files, 0o755, 0o644, 0, 0)
		sc.release()
		if err == nil {
			return 1, nil
		}
		if !errors.Is(err, vfs.ErrExist) {
			return 0, err
		}
	}
	// Rewrite of an existing flow: clear stale match/action files from a
	// previous incarnation, then write fields individually.
	entries, err := tx.ReadDir(flowPath)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name, MatchPrefix) || strings.HasPrefix(e.Name, ActionPrefix) {
			if err := tx.Remove(vfs.Join(flowPath, e.Name)); err != nil {
				return 0, err
			}
		}
	}
	var version uint64 = 1
	if cur, err := tx.ReadFile(vfs.Join(flowPath, FileVersion)); err == nil {
		v, _ := strconv.ParseUint(strings.TrimSpace(string(cur)), 10, 64)
		version = v + 1
	}
	fields, sc := flowFiles(spec, version)
	for _, f := range fields {
		if err := tx.WriteFile(vfs.Join(flowPath, f.Name), f.Data, 0o644, 0, 0); err != nil {
			sc.release()
			return 0, err
		}
	}
	sc.release()
	return version, nil
}
