package yancfs

import (
	"strconv"
	"strings"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// PutFlowTx writes a complete flow — skeleton, match files, action files,
// metadata, and the committed version — inside an already-open
// transaction. This is the primitive behind libyanc's fastpath (§8.1):
// one lock acquisition and one event flush replace the dozens of
// open/write/close calls the file-I/O path performs, while producing an
// identical on-disk layout, so drivers cannot tell the difference.
func (y *FS) PutFlowTx(tx *vfs.Tx, flowPath string, spec FlowSpec) (uint64, error) {
	flowPath = vfs.Clean(flowPath)
	created := false
	if !tx.Exists(flowPath) {
		if err := tx.Mkdir(flowPath, 0o755, 0, 0); err != nil {
			return 0, err
		}
		created = true
		if err := tx.Mkdir(vfs.Join(flowPath, "counters"), 0o755, 0, 0); err != nil {
			return 0, err
		}
		switchPath := vfs.Dir(vfs.Dir(flowPath))
		y.bindFlowCounters(tx, switchPath, flowPath, vfs.Base(flowPath))
	}
	if !created {
		// Clear stale match/action files from a previous incarnation.
		entries, err := tx.ReadDir(flowPath)
		if err != nil {
			return 0, err
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name, MatchPrefix) || strings.HasPrefix(e.Name, ActionPrefix) {
				if err := tx.Remove(vfs.Join(flowPath, e.Name)); err != nil {
					return 0, err
				}
			}
		}
	}
	for _, f := range openflow.AllFields {
		if !spec.Match.Has(f) {
			continue
		}
		p := vfs.Join(flowPath, MatchPrefix+f.Name())
		if err := tx.WriteFile(p, []byte(spec.Match.FieldString(f)+"\n"), 0o644, 0, 0); err != nil {
			return 0, err
		}
	}
	for _, a := range spec.Actions {
		p := vfs.Join(flowPath, ActionPrefix+a.ActionFileName())
		if err := tx.WriteFile(p, []byte(a.ActionFileValue()+"\n"), 0o644, 0, 0); err != nil {
			return 0, err
		}
	}
	meta := map[string]string{
		FilePriority:    strconv.FormatUint(uint64(spec.Priority), 10),
		FileIdleTimeout: strconv.FormatUint(uint64(spec.IdleTimeout), 10),
		FileHardTimeout: strconv.FormatUint(uint64(spec.HardTimeout), 10),
	}
	if spec.Cookie != 0 {
		meta[FileCookie] = strconv.FormatUint(spec.Cookie, 10)
	}
	for f, content := range meta {
		if err := tx.WriteFile(vfs.Join(flowPath, f), []byte(content+"\n"), 0o644, 0, 0); err != nil {
			return 0, err
		}
	}
	// Commit: bump version.
	var version uint64 = 1
	if cur, err := tx.ReadFile(vfs.Join(flowPath, FileVersion)); err == nil {
		v, _ := strconv.ParseUint(strings.TrimSpace(string(cur)), 10, 64)
		version = v + 1
	}
	if err := tx.WriteFile(vfs.Join(flowPath, FileVersion), []byte(strconv.FormatUint(version, 10)+"\n"), 0o644, 0, 0); err != nil {
		return 0, err
	}
	return version, nil
}
