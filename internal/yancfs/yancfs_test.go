package yancfs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"yanc/internal/ethernet"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	y, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestTopLevelHierarchy(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	for _, d := range []string{"/switches", "/hosts", "/views", "/events"} {
		if !p.IsDir(d) {
			t.Errorf("%s missing", d)
		}
	}
	// Top-level objects are protected from removal.
	if err := p.WithCred(vfs.Cred{UID: 1000}).Remove("/switches"); !errors.Is(err, vfs.ErrPerm) && !errors.Is(err, vfs.ErrAccess) {
		t.Errorf("remove /switches = %v", err)
	}
}

func TestSemanticMkdirSwitch(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	path, err := CreateSwitch(p, "/", "sw1")
	if err != nil {
		t.Fatal(err)
	}
	if path != "/switches/sw1" {
		t.Errorf("path = %s", path)
	}
	// Figure 3 skeleton.
	for _, d := range []string{"counters", "flows", "ports"} {
		if !p.IsDir(vfs.Join(path, d)) {
			t.Errorf("switch subdir %s missing", d)
		}
	}
	for _, f := range []string{"actions", "capabilities", "id", "num_buffers"} {
		if st, err := p.Stat(vfs.Join(path, f)); err != nil || st.IsDir() {
			t.Errorf("switch file %s: %v", f, err)
		}
	}
}

func TestSemanticMkdirView(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	// "mkdir views/new_view will create the directory new_view, but also
	// the hosts, switches, and views subdirectories" (§3.1).
	if err := p.Mkdir("/views/new_view", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"hosts", "switches", "views", "events"} {
		if !p.IsDir("/views/new_view/" + d) {
			t.Errorf("view subdir %s missing", d)
		}
	}
	// Views nest (Figure 2: management-net has its own views/).
	if err := p.Mkdir("/views/new_view/views/inner", 0o755); err != nil {
		t.Fatal(err)
	}
	if !p.IsDir("/views/new_view/views/inner/switches") {
		t.Error("nested view not populated")
	}
	// Switches created inside a view get the full skeleton too.
	if _, err := CreateSwitch(p, "/views/new_view", "vsw1"); err != nil {
		t.Fatal(err)
	}
	if !p.IsDir("/views/new_view/switches/vsw1/flows") {
		t.Error("view switch skeleton missing")
	}
}

func TestRecursiveSwitchRemoval(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	path, _ := CreateSwitch(p, "/", "sw1")
	if _, err := WriteFlow(p, vfs.Join(path, "flows", "f1"), FlowSpec{Priority: 1}); err != nil {
		t.Fatal(err)
	}
	// "Children of this object do not need to be removed prior to
	// removing the object itself" (§3.2).
	if err := p.Remove(path); err != nil {
		t.Fatal(err)
	}
	if p.Exists(path) {
		t.Fatal("switch not removed")
	}
}

func TestSwitchRename(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	path, _ := CreateSwitch(p, "/", "sw1")
	if err := p.Rename(path, "/switches/edge-1"); err != nil {
		t.Fatal(err)
	}
	if !p.IsDir("/switches/edge-1/flows") {
		t.Fatal("renamed switch lost its structure")
	}
}

func TestFlowWriteReadRoundTrip(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	m, err := openflow.ParseMatch("dl_type=0x0806,nw_proto=1")
	if err != nil {
		t.Fatal(err)
	}
	actions, _ := openflow.ParseActions("out=2,set_nw_tos=8")
	spec := FlowSpec{
		Match:       m,
		Priority:    100,
		IdleTimeout: 30,
		HardTimeout: 60,
		Cookie:      42,
		Actions:     actions,
	}
	flowPath := vfs.Join(swPath, "flows", "arp_flow")
	v, err := WriteFlow(p, flowPath, spec)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("first commit version = %d", v)
	}
	// Figure 3: the match files exist with the right content.
	if s, _ := p.ReadString(vfs.Join(flowPath, "match.dl_type")); s != "0x0806" {
		t.Errorf("match.dl_type = %q", s)
	}
	if s, _ := p.ReadString(vfs.Join(flowPath, "action.out")); s != "2" {
		t.Errorf("action.out = %q", s)
	}
	got, err := ReadFlow(p, flowPath)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Match.Equal(spec.Match) || got.Priority != 100 || got.IdleTimeout != 30 ||
		got.HardTimeout != 60 || got.Cookie != 42 {
		t.Errorf("read back = %+v", got)
	}
	// Non-output actions come first after the canonical ordering.
	if got.Actions[len(got.Actions)-1].Type != openflow.ActOutput {
		t.Errorf("actions order = %v", openflow.FormatActions(got.Actions))
	}
	// Rewriting with fewer fields removes stale files.
	spec2 := FlowSpec{Priority: 5, Actions: []openflow.Action{openflow.Output(1)}}
	if v, err = WriteFlow(p, flowPath, spec2); err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("second commit version = %d", v)
	}
	if p.Exists(vfs.Join(flowPath, "match.dl_type")) {
		t.Error("stale match file not removed")
	}
	if p.Exists(vfs.Join(flowPath, "action.set_nw_tos")) {
		t.Error("stale action file not removed")
	}
}

func TestFlowCommitVisibility(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	flowPath := vfs.Join(swPath, "flows", "f1")
	// Stage without committing: version stays 0.
	if err := p.Mkdir(flowPath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString(vfs.Join(flowPath, "match.tp_dst"), "22\n"); err != nil {
		t.Fatal(err)
	}
	if v, err := FlowVersion(p, flowPath); err != nil || v != 0 {
		t.Fatalf("staged version = %d %v", v, err)
	}
	// A driver watching version files sees exactly one event per commit.
	w, err := p.AddWatch(swPath, vfs.OpWrite, vfs.Recursive())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := CommitFlow(p, flowPath); err != nil {
		t.Fatal(err)
	}
	var versionWrites int
	timeout := time.After(time.Second)
	for versionWrites == 0 {
		select {
		case ev := <-w.C:
			if vfs.Base(ev.Path) == FileVersion && ev.Op == vfs.OpWrite {
				versionWrites++
			}
		case <-timeout:
			t.Fatal("no version write observed")
		}
	}
}

func TestPortPopulateAndPeerValidation(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	sw1, _ := CreateSwitch(p, "/", "sw1")
	sw2, _ := CreateSwitch(p, "/", "sw2")
	port := openflow.PortInfo{No: 2, HWAddr: ethernet.MAC{2, 0, 0, 0, 0, 2}, Name: "sw1-eth2", CurrSpeed: 10000}
	if err := PopulatePort(p, sw1, port); err != nil {
		t.Fatal(err)
	}
	if err := PopulatePort(p, sw2, openflow.PortInfo{No: 7, Name: "sw2-eth7"}); err != nil {
		t.Fatal(err)
	}
	p1 := vfs.Join(sw1, "ports", "2")
	if s, _ := p.ReadString(vfs.Join(p1, "hw_addr")); s != "02:00:00:00:00:02" {
		t.Errorf("hw_addr = %q", s)
	}
	// Peer must point at a port (§3.3).
	if err := SetPeer(p, p1, vfs.Join(sw2, "ports", "7")); err != nil {
		t.Fatal(err)
	}
	name, no, ok := Peer(p, p1)
	if !ok || name != "sw2" || no != 7 {
		t.Errorf("peer = %s %d %v", name, no, ok)
	}
	// Re-pointing replaces.
	if err := PopulatePort(p, sw2, openflow.PortInfo{No: 8, Name: "sw2-eth8"}); err != nil {
		t.Fatal(err)
	}
	if err := SetPeer(p, p1, vfs.Join(sw2, "ports", "8")); err != nil {
		t.Fatal(err)
	}
	if _, no, _ := Peer(p, p1); no != 8 {
		t.Errorf("re-pointed peer = %d", no)
	}
	// Pointing peer at a non-port is an error.
	if err := p.Symlink("/hosts", vfs.Join(sw2, "ports", "7", "peer")); !errors.Is(err, vfs.ErrInvalid) {
		t.Errorf("invalid peer target = %v", err)
	}
	// Other symlink names in a port dir are unrestricted.
	if err := p.Symlink("/hosts", vfs.Join(sw2, "ports", "7", "note")); err != nil {
		t.Errorf("non-peer symlink = %v", err)
	}
}

func TestPortDownViaEcho(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	sw1, _ := CreateSwitch(p, "/", "sw1")
	if err := PopulatePort(p, sw1, openflow.PortInfo{No: 2, Name: "p2"}); err != nil {
		t.Fatal(err)
	}
	portPath := vfs.Join(sw1, "ports", "2")
	down, err := PortDown(p, portPath)
	if err != nil || down {
		t.Fatalf("initial down = %v %v", down, err)
	}
	// "# echo 1 > port_2/config.port_down" (§3.1).
	if err := p.WriteString(vfs.Join(portPath, "config.port_down"), "1\n"); err != nil {
		t.Fatal(err)
	}
	if down, _ = PortDown(p, portPath); !down {
		t.Fatal("port not marked down")
	}
}

func TestPopulateSwitchFromFeatures(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	features := &openflow.FeaturesReply{
		DatapathID: 0xab,
		NBuffers:   256,
		NTables:    2,
		Ports: []openflow.PortInfo{
			{No: 1, Name: "e1"},
			{No: 2, Name: "e2"},
		},
	}
	if err := PopulateSwitch(p, swPath, features, "openflow10"); err != nil {
		t.Fatal(err)
	}
	id, err := SwitchID(p, swPath)
	if err != nil || id != 0xab {
		t.Fatalf("id = %x %v", id, err)
	}
	if s, _ := p.ReadString(vfs.Join(swPath, "protocol")); s != "openflow10" {
		t.Errorf("protocol = %q", s)
	}
	ports, err := ListPorts(p, swPath)
	if err != nil || len(ports) != 2 || ports[0] != 1 || ports[1] != 2 {
		t.Fatalf("ports = %v %v", ports, err)
	}
	names, err := ListSwitches(p, "/")
	if err != nil || len(names) != 1 || names[0] != "sw1" {
		t.Fatalf("switches = %v %v", names, err)
	}
}

type fakeCounters struct {
	flows map[string][2]uint64
	ports map[uint32]PortCounterSet
}

func (f *fakeCounters) FlowCounters(name string) (uint64, uint64, bool) {
	c, ok := f.flows[name]
	return c[0], c[1], ok
}

func (f *fakeCounters) PortCounters(no uint32) (PortCounterSet, bool) {
	c, ok := f.ports[no]
	return c, ok
}

func TestSyntheticCounters(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	if err := PopulatePort(p, swPath, openflow.PortInfo{No: 1, Name: "e1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFlow(p, vfs.Join(swPath, "flows", "f1"), FlowSpec{Priority: 1}); err != nil {
		t.Fatal(err)
	}
	src := &fakeCounters{
		flows: map[string][2]uint64{"f1": {7, 700}},
		ports: map[uint32]PortCounterSet{1: {RxPackets: 11, TxBytes: 22}},
	}
	y.BindCounters(swPath, src)
	if s, _ := p.ReadString(vfs.Join(swPath, "flows", "f1", "counters", "packets")); s != "7" {
		t.Errorf("flow packets = %q", s)
	}
	if s, _ := p.ReadString(vfs.Join(swPath, "flows", "f1", "counters", "bytes")); s != "700" {
		t.Errorf("flow bytes = %q", s)
	}
	if s, _ := p.ReadString(vfs.Join(swPath, "ports", "1", "counters", "rx_packets")); s != "11" {
		t.Errorf("port rx = %q", s)
	}
	if s, _ := p.ReadString(vfs.Join(swPath, "counters", "rx_packets")); s != "11" {
		t.Errorf("switch aggregate rx = %q", s)
	}
	// Counter files are read-only.
	if err := p.WriteString(vfs.Join(swPath, "counters", "rx_packets"), "0"); err == nil {
		t.Error("counter write must fail")
	}
	// Live update visible immediately.
	src.ports[1] = PortCounterSet{RxPackets: 12}
	if s, _ := p.ReadString(vfs.Join(swPath, "ports", "1", "counters", "rx_packets")); s != "12" {
		t.Errorf("updated rx = %q", s)
	}
}

func TestEventSubscribeDeliverConsume(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	buf1, w1, err := Subscribe(p, "/", "router")
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	buf2, w2, err := Subscribe(p, "/", "monitor")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	pi := &openflow.PacketIn{
		BufferID: 5, InPort: 3, Reason: openflow.ReasonNoMatch,
		TotalLen: 4, Data: []byte{1, 2, 3, 4},
	}
	if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
		t.Fatal(err)
	}
	// Both buffers got the message concurrently (§3.5).
	for i, buf := range []string{buf1, buf2} {
		msgs, err := PendingEvents(p, buf)
		if err != nil || len(msgs) != 1 {
			t.Fatalf("buffer %d msgs = %v %v", i, msgs, err)
		}
		ev, err := ReadPacketIn(p, msgs[0])
		if err != nil {
			t.Fatal(err)
		}
		if ev.Switch != "sw1" || ev.InPort != 3 || ev.BufferID != 5 || string(ev.Data) != "\x01\x02\x03\x04" {
			t.Errorf("buffer %d event = %+v", i, ev)
		}
	}
	// Watches fired.
	select {
	case ev := <-w1.C:
		if ev.Op != vfs.OpCreate {
			t.Errorf("watch event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no watch event")
	}
	// Consuming removes only the consumer's copy.
	msgs, _ := PendingEvents(p, buf1)
	if _, err := ConsumePacketIn(p, msgs[0]); err != nil {
		t.Fatal(err)
	}
	if left, _ := PendingEvents(p, buf1); len(left) != 0 {
		t.Error("consume did not remove the message")
	}
	if left, _ := PendingEvents(p, buf2); len(left) != 1 {
		t.Error("other buffer lost its copy")
	}
	// Delivery order is preserved.
	for i := 0; i < 3; i++ {
		_ = y.DeliverPacketIn("/", "sw1", pi)
	}
	msgs, _ = PendingEvents(p, buf2)
	if len(msgs) != 4 {
		t.Fatalf("pending = %d", len(msgs))
	}
	for i := 1; i < len(msgs); i++ {
		if !(msgs[i-1] < msgs[i]) {
			t.Errorf("order violated: %s !< %s", msgs[i-1], msgs[i])
		}
	}
}

func TestDeliverWithNoSubscribers(t *testing.T) {
	y := newFS(t)
	if err := y.DeliverPacketIn("/", "sw1", &openflow.PacketIn{Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsInViewRegion(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	if err := p.Mkdir("/views/http", 0o755); err != nil {
		t.Fatal(err)
	}
	_, w, err := Subscribe(p, "/views/http", "lb")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := y.DeliverPacketIn("/views/http", "vsw1", &openflow.PacketIn{Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	msgs, err := PendingEvents(p, "/views/http/events/lb")
	if err != nil || len(msgs) != 1 {
		t.Fatalf("view events = %v %v", msgs, err)
	}
	// Master subscribers do not see view events.
	_, mw, _ := Subscribe(p, "/", "other")
	defer mw.Close()
	if msgs, _ := PendingEvents(p, "/events/other"); len(msgs) != 0 {
		t.Error("view event leaked to master")
	}
}

func TestPermissionsProtectFlows(t *testing.T) {
	y := newFS(t)
	root := y.Root()
	swPath, _ := CreateSwitch(root, "/", "sw1")
	flowPath := vfs.Join(swPath, "flows", "critical")
	if _, err := WriteFlow(root, flowPath, FlowSpec{Priority: 1000}); err != nil {
		t.Fatal(err)
	}
	alice := y.Proc(vfs.Cred{UID: 1000, GID: 1000})
	// alice cannot modify the root-owned flow's files.
	if err := alice.WriteString(vfs.Join(flowPath, "priority"), "1"); !errors.Is(err, vfs.ErrAccess) {
		t.Errorf("alice flow write = %v", err)
	}
	// An entire switch can be protected (§5.1): chmod 0700 on the switch
	// dir blocks traversal.
	if err := root.Chmod(swPath, 0o700); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.ReadDir(vfs.Join(swPath, "flows")); !errors.Is(err, vfs.ErrAccess) {
		t.Errorf("alice flows readdir = %v", err)
	}
	// Granting a group opens it selectively.
	if err := root.Chmod(swPath, 0o750); err != nil {
		t.Fatal(err)
	}
	if err := root.Chown(swPath, 0, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.ReadDir(vfs.Join(swPath, "flows")); err != nil {
		t.Errorf("group member readdir = %v", err)
	}
}

func TestConsistencyXattr(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	// §5.1/§6: xattrs carry consistency requirements for subtrees.
	if err := p.SetXattr(swPath, "user.yanc.consistency", []byte("eventual")); err != nil {
		t.Fatal(err)
	}
	v, err := p.GetXattrString(swPath, "user.yanc.consistency")
	if err != nil || v != "eventual" {
		t.Fatalf("xattr = %q %v", v, err)
	}
}

func TestHostObjects(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	if err := AddHost(p, "/", "h1", "02:00:00:00:00:01", "10.0.0.1", "sw1", 1); err != nil {
		t.Fatal(err)
	}
	if s, _ := p.ReadString("/hosts/h1/ip"); s != "10.0.0.1" {
		t.Errorf("host ip = %q", s)
	}
	if s, _ := p.ReadString("/hosts/h1/switch"); s != "sw1" {
		t.Errorf("host switch = %q", s)
	}
}

func TestFigure2Hierarchy(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	// Build exactly Figure 2: sw1, sw2, views/http, views/management-net.
	for _, sw := range []string{"sw1", "sw2"} {
		if _, err := CreateSwitch(p, "/", sw); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []string{"http", "management-net"} {
		if err := p.Mkdir("/views/"+v, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := p.Walk("/", func(path string, st vfs.Stat) error {
		depth := strings.Count(path, "/")
		if depth <= 2 && path != "/" {
			got = append(got, path)
		}
		if depth >= 2 {
			return vfs.SkipDir
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"/events",
		"/hosts",
		"/switches", "/switches/sw1", "/switches/sw2",
		"/views", "/views/http", "/views/management-net",
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("hierarchy:\n got %v\nwant %v", got, want)
	}
	// management-net has the nested region dirs of Figure 2.
	for _, d := range []string{"hosts", "switches", "views"} {
		if !p.IsDir("/views/management-net/" + d) {
			t.Errorf("management-net/%s missing", d)
		}
	}
}

func TestFigure3Representations(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	m, _ := openflow.ParseMatch("dl_type=0x0806,dl_src=00:00:00:00:00:01")
	if _, err := WriteFlow(p, vfs.Join(swPath, "flows", "arp_flow"), FlowSpec{
		Match:       m,
		Priority:    10,
		IdleTimeout: 60,
		Actions:     []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	// Figure 3 flow entries: counters/, match.dl_type, match.dl_src,
	// action.out, priority, timeout (idle), version.
	flow := vfs.Join(swPath, "flows", "arp_flow")
	for _, name := range []string{"counters", "match.dl_type", "match.dl_src", "action.out", "priority", "idle_timeout", "version"} {
		if !p.Exists(vfs.Join(flow, name)) {
			t.Errorf("flow entry %s missing", name)
		}
	}
	// Figure 3 switch: counters/, flows/, ports/, actions, capabilities,
	// id, num_buffers.
	for _, name := range []string{"counters", "flows", "ports", "actions", "capabilities", "id", "num_buffers"} {
		if !p.Exists(vfs.Join(swPath, name)) {
			t.Errorf("switch entry %s missing", name)
		}
	}
}
