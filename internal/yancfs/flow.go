package yancfs

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// FlowSpec is the in-memory form of a flow directory: one match.* file
// per participating field, one action.* file per action, plus priority,
// timeouts, and cookie (Figure 3).
type FlowSpec struct {
	Match       openflow.Match
	Priority    uint16
	IdleTimeout uint16
	HardTimeout uint16
	Cookie      uint64
	Actions     []openflow.Action
}

// WriteFlow writes the spec's fields into the flow directory at flowPath
// using ordinary file I/O — one create+write+close per field, exactly the
// per-access cost §8.1 talks about — and then commits it by incrementing
// the version file. The directory is created if missing (its skeleton
// comes from the flows/ mkdir semantics). Returns the committed version.
func WriteFlow(p *vfs.Proc, flowPath string, spec FlowSpec) (uint64, error) {
	if !p.Exists(flowPath) {
		if err := p.Mkdir(flowPath, 0o755); err != nil {
			return 0, err
		}
	}
	for _, f := range openflow.AllFields {
		path := vfs.Join(flowPath, MatchPrefix+f.Name())
		if spec.Match.Has(f) {
			if err := p.WriteString(path, spec.Match.FieldString(f)+"\n"); err != nil {
				return 0, err
			}
		} else if p.Exists(path) {
			if err := p.Remove(path); err != nil {
				return 0, err
			}
		}
	}
	// Remove stale action files, then write the current ones.
	entries, err := p.ReadDir(flowPath)
	if err != nil {
		return 0, err
	}
	current := make(map[string]bool, len(spec.Actions))
	for _, a := range spec.Actions {
		current[ActionPrefix+a.ActionFileName()] = true
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name, ActionPrefix) && !current[e.Name] {
			if err := p.Remove(vfs.Join(flowPath, e.Name)); err != nil {
				return 0, err
			}
		}
	}
	for _, a := range spec.Actions {
		if err := p.WriteString(vfs.Join(flowPath, ActionPrefix+a.ActionFileName()), a.ActionFileValue()+"\n"); err != nil {
			return 0, err
		}
	}
	if err := p.WriteString(vfs.Join(flowPath, FilePriority), strconv.FormatUint(uint64(spec.Priority), 10)+"\n"); err != nil {
		return 0, err
	}
	if err := p.WriteString(vfs.Join(flowPath, FileIdleTimeout), strconv.FormatUint(uint64(spec.IdleTimeout), 10)+"\n"); err != nil {
		return 0, err
	}
	if err := p.WriteString(vfs.Join(flowPath, FileHardTimeout), strconv.FormatUint(uint64(spec.HardTimeout), 10)+"\n"); err != nil {
		return 0, err
	}
	if spec.Cookie != 0 {
		if err := p.WriteString(vfs.Join(flowPath, FileCookie), strconv.FormatUint(spec.Cookie, 10)+"\n"); err != nil {
			return 0, err
		}
	}
	return CommitFlow(p, flowPath)
}

// CommitFlow atomically publishes the staged flow fields by incrementing
// the version file. Drivers watch this file; "changes are only sent to
// hardware once the version has been incremented" (§3.4).
func CommitFlow(p *vfs.Proc, flowPath string) (uint64, error) {
	versionPath := vfs.Join(flowPath, FileVersion)
	cur, err := p.ReadString(versionPath)
	if err != nil {
		cur = "0"
	}
	v, _ := strconv.ParseUint(strings.TrimSpace(cur), 10, 64)
	v++
	if err := p.WriteString(versionPath, strconv.FormatUint(v, 10)+"\n"); err != nil {
		return 0, err
	}
	return v, nil
}

// flowReader abstracts where flow files are read from: a Proc (one lock
// acquisition per call) or a read transaction (one lock for a whole
// multi-flow snapshot).
type flowReader interface {
	ReadDir(path string) ([]vfs.DirEntry, error)
	ReadString(path string) (string, error)
}

// txReader adapts a read transaction to flowReader.
type txReader struct{ tx *vfs.Tx }

func (r txReader) ReadDir(path string) ([]vfs.DirEntry, error) { return r.tx.ReadDir(path) }

func (r txReader) ReadString(path string) (string, error) {
	b, err := r.tx.ReadFile(path)
	return string(b), err
}

// FlowVersion reads a flow's committed version (0 = staged, never
// committed).
func FlowVersion(p *vfs.Proc, flowPath string) (uint64, error) {
	return flowVersion(p, flowPath)
}

func flowVersion(r flowReader, flowPath string) (uint64, error) {
	s, err := r.ReadString(vfs.Join(flowPath, FileVersion))
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(s), 10, 64)
}

// FlowSnap is one committed flow as captured by SnapshotFlows.
type FlowSnap struct {
	Name    string
	Version uint64
	Spec    FlowSpec
}

// SnapshotFlows reads every committed flow under switchPath in a single
// read transaction: one lock acquisition for the whole table, and a
// mutually consistent view — no per-flow seqlock retries, because nothing
// can commit mid-snapshot. This is what driver resync-on-reattach wants:
// the hardware receives the flow table as it existed at one instant,
// instead of a stitched-together sequence of per-file reads.
func (y *FS) SnapshotFlows(switchPath string) ([]FlowSnap, error) {
	dir := vfs.Join(switchPath, "flows")
	var out []FlowSnap
	err := y.vfs.ReadTx(func(tx *vfs.Tx) error {
		entries, err := tx.ReadDir(dir)
		if err != nil {
			if errIsNotExist(err) {
				return nil
			}
			return err
		}
		r := txReader{tx}
		for _, e := range entries {
			if !e.IsDir() || strings.HasPrefix(e.Name, ".") {
				continue
			}
			fp := vfs.Join(dir, e.Name)
			ver, err := flowVersion(r, fp)
			if err != nil || ver == 0 {
				continue // staged or mid-creation: the commit watch will sync it
			}
			spec, err := readFlowOnce(r, fp)
			if err != nil {
				continue // corrupt entry: skip, same policy as ReadFlow tolerance
			}
			out = append(out, FlowSnap{Name: e.Name, Version: ver, Spec: spec})
		}
		return nil
	})
	return out, err
}

// ReadFlow parses a flow directory back into a FlowSpec. Unknown files
// are ignored; a missing match file is a wildcard.
//
// The version file doubles as a seqlock, which is how the paper gets
// atomic multi-file updates (§3.4): the read is retried whenever the
// version changed underneath it or a field was caught mid-rewrite.
func ReadFlow(p *vfs.Proc, flowPath string) (FlowSpec, error) {
	var (
		spec FlowSpec
		err  error
	)
	for attempt := 0; attempt < 8; attempt++ {
		before, _ := FlowVersion(p, flowPath)
		spec, err = readFlowOnce(p, flowPath)
		after, _ := FlowVersion(p, flowPath)
		if err == nil && before == after {
			return spec, nil
		}
		if err != nil && errIsNotExist(err) {
			return spec, err
		}
		time.Sleep(time.Duration(attempt+1) * 100 * time.Microsecond)
	}
	return spec, err
}

func errIsNotExist(err error) bool {
	return errors.Is(err, vfs.ErrNotExist) || errors.Is(err, vfs.ErrAccess)
}

func readFlowOnce(p flowReader, flowPath string) (FlowSpec, error) {
	var spec FlowSpec
	entries, err := p.ReadDir(flowPath)
	if err != nil {
		return spec, err
	}
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name, MatchPrefix):
			fieldName := strings.TrimPrefix(e.Name, MatchPrefix)
			f, ok := openflow.FieldByName(fieldName)
			if !ok {
				continue
			}
			val, err := p.ReadString(vfs.Join(flowPath, e.Name))
			if err != nil {
				return spec, err
			}
			if err := spec.Match.SetField(f, val); err != nil {
				return spec, fmt.Errorf("yancfs: %s: %w", e.Name, err)
			}
		case strings.HasPrefix(e.Name, ActionPrefix):
			actName := strings.TrimPrefix(e.Name, ActionPrefix)
			val, err := p.ReadString(vfs.Join(flowPath, e.Name))
			if err != nil {
				return spec, err
			}
			a, err := openflow.ParseAction(actName, val)
			if err != nil {
				return spec, fmt.Errorf("yancfs: %s: %w", e.Name, err)
			}
			spec.Actions = append(spec.Actions, a)
		case e.Name == FilePriority:
			spec.Priority = readUint16(p, vfs.Join(flowPath, e.Name))
		case e.Name == FileIdleTimeout || e.Name == "timeout":
			spec.IdleTimeout = readUint16(p, vfs.Join(flowPath, e.Name))
		case e.Name == FileHardTimeout:
			spec.HardTimeout = readUint16(p, vfs.Join(flowPath, e.Name))
		case e.Name == FileCookie:
			s, _ := p.ReadString(vfs.Join(flowPath, e.Name))
			spec.Cookie, _ = strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		}
	}
	// Deterministic action order: outputs last, preserving relative order
	// otherwise, so rewrites happen before forwarding.
	spec.Actions = orderActions(spec.Actions)
	return spec, nil
}

func readUint16(p flowReader, path string) uint16 {
	s, err := p.ReadString(path)
	if err != nil {
		return 0
	}
	v, _ := strconv.ParseUint(strings.TrimSpace(s), 10, 16)
	return uint16(v)
}

// orderActions moves output actions after set-field actions; a flow
// directory is an unordered set of files, so the schema fixes the only
// sensible order (transform, then forward).
func orderActions(actions []openflow.Action) []openflow.Action {
	var sets, outs []openflow.Action
	for _, a := range actions {
		if a.Type == openflow.ActOutput {
			outs = append(outs, a)
		} else {
			sets = append(sets, a)
		}
	}
	return append(sets, outs...)
}

// ListFlows returns the flow directory names under a switch path.
func ListFlows(p *vfs.Proc, switchPath string) ([]string, error) {
	entries, err := p.ReadDir(vfs.Join(switchPath, "flows"))
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name)
		}
	}
	return names, nil
}

// DeleteFlow removes a flow directory; the flows/ semantics make the
// rmdir recursive.
func DeleteFlow(p *vfs.Proc, flowPath string) error {
	return p.Remove(flowPath)
}
