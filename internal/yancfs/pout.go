package yancfs

import (
	"strconv"
	"strings"
)

// The packet-out data path is the write-direction mirror of the
// packet-in spool (§8.1 "efficient, zero-copy passing of bulk data"):
//
//   - libyanc stages one message directory — an immutable "head" spec
//     file plus the raw "frame" — under the region's hidden
//     <region>/events/.spool, hard-links it into every target switch's
//     pout/ directory, and unlinks the staging entry, all in one
//     transaction. The frame bytes exist once no matter how many
//     switches are targeted; the inode's nlink is the reference count.
//   - A tiny per-switch pout/doorbell write (the only copied bytes,
//     ~8 of them) tells the driver's mux that messages are pending; the
//     driver consumes each message by reference (vfs.ReadFileShared)
//     and removes its link, reclaiming the block when the last switch
//     has sent it.
const (
	// DirPacketOut is the per-switch queue directory the driver drains.
	DirPacketOut = "pout"
	// FileDoorbell is the per-switch notification file; its write event
	// is what wakes the driver, its content (the last staged sequence
	// number) is informational.
	FileDoorbell = "doorbell"
	// PacketOutHead and PacketOutFrame are the two files of a staged
	// packet-out message. Head holds a ParsePacketOutSpec line; Frame
	// holds the raw packet bytes, write-once so they can be read shared.
	PacketOutHead  = "head"
	PacketOutFrame = "frame"

	poutPrefix = "po-"
)

// PacketOutName formats the message directory name for a sequence
// number; zero-padded so lexicographic order equals staging order.
func PacketOutName(seq uint64) string {
	return poutPrefix + pad12(seq)
}

// IsPacketOutName reports whether a pout/ entry is a staged message
// directory (the doorbell file is not).
func IsPacketOutName(name string) bool {
	if !strings.HasPrefix(name, poutPrefix) {
		return false
	}
	_, err := strconv.ParseUint(name[len(poutPrefix):], 10, 64)
	return err == nil
}
