package yancfs

import (
	"fmt"
	"strconv"
	"strings"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// CreateSwitch makes a switch object in a region via mkdir; the skeleton
// (counters/, flows/, ports/, info files) appears atomically thanks to
// the directory semantics.
func CreateSwitch(p *vfs.Proc, region, name string) (string, error) {
	path := vfs.Join(region, DirSwitches, name)
	if err := p.Mkdir(path, 0o755); err != nil {
		return "", err
	}
	return path, nil
}

// PopulateSwitch fills a switch directory from an OpenFlow features
// reply: identity files and one port directory per physical port. The
// driver calls this right after the handshake.
func PopulateSwitch(p *vfs.Proc, switchPath string, features *openflow.FeaturesReply, protocol string) error {
	writes := map[string]string{
		"id":          fmt.Sprintf("%016x", features.DatapathID),
		"num_buffers": strconv.FormatUint(uint64(features.NBuffers), 10),
		"num_tables":  strconv.FormatUint(uint64(features.NTables), 10),
		"protocol":    protocol,
	}
	for file, content := range writes {
		if err := p.WriteString(vfs.Join(switchPath, file), content+"\n"); err != nil {
			return err
		}
	}
	for _, port := range features.Ports {
		if err := PopulatePort(p, switchPath, port); err != nil {
			return err
		}
	}
	return nil
}

// PopulatePort creates or refreshes one port directory from its PortInfo.
func PopulatePort(p *vfs.Proc, switchPath string, port openflow.PortInfo) error {
	portPath := vfs.Join(switchPath, "ports", strconv.FormatUint(uint64(port.No), 10))
	if !p.Exists(portPath) {
		if err := p.Mkdir(portPath, 0o755); err != nil {
			return err
		}
	}
	down := "0"
	if port.Config&openflow.PortConfigDown != 0 {
		down = "1"
	}
	status := "up"
	if port.State&openflow.PortStateLinkDown != 0 {
		status = "down"
	}
	for file, content := range map[string]string{
		"hw_addr":            port.HWAddr.String(),
		"name":               port.Name,
		"speed":              strconv.FormatUint(uint64(port.CurrSpeed), 10),
		"config.port_down":   down,
		"config.port_status": status,
	} {
		if err := p.WriteString(vfs.Join(portPath, file), content+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// SwitchID reads a switch's datapath id.
func SwitchID(p *vfs.Proc, switchPath string) (uint64, error) {
	s, err := p.ReadString(vfs.Join(switchPath, "id"))
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(strings.TrimSpace(s), 16, 64)
}

// ListSwitches returns switch names in a region.
func ListSwitches(p *vfs.Proc, region string) ([]string, error) {
	entries, err := p.ReadDir(vfs.Join(region, DirSwitches))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name)
		}
	}
	return out, nil
}

// ListPorts returns the numeric ports of a switch in ascending order.
func ListPorts(p *vfs.Proc, switchPath string) ([]uint32, error) {
	entries, err := p.ReadDir(vfs.Join(switchPath, "ports"))
	if err != nil {
		return nil, err
	}
	var out []uint32
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if v, err := strconv.ParseUint(e.Name, 10, 32); err == nil {
			out = append(out, uint32(v))
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, nil
}

// PortDown reports whether config.port_down is set on a port.
func PortDown(p *vfs.Proc, portPath string) (bool, error) {
	s, err := p.ReadString(vfs.Join(portPath, "config.port_down"))
	if err != nil {
		return false, err
	}
	return strings.TrimSpace(s) == "1", nil
}

// SetPeer points a port's peer symlink at another port, replacing any
// existing link. Physical topology is represented exclusively through
// these links (§3.3).
func SetPeer(p *vfs.Proc, portPath, peerPortPath string) error {
	link := vfs.Join(portPath, "peer")
	if p.Exists(link) || linkExists(p, link) {
		if err := p.Remove(link); err != nil {
			return err
		}
	}
	return p.Symlink(peerPortPath, link)
}

// linkExists detects a dangling symlink (Exists follows and fails).
func linkExists(p *vfs.Proc, path string) bool {
	_, err := p.Lstat(path)
	return err == nil
}

// Peer resolves a port's peer symlink to (switchName, portNo). ok is
// false when the port has no peer.
func Peer(p *vfs.Proc, portPath string) (switchName string, portNo uint32, ok bool) {
	target, err := p.Readlink(vfs.Join(portPath, "peer"))
	if err != nil {
		return "", 0, false
	}
	resolved := target
	if !strings.HasPrefix(target, "/") {
		resolved = vfs.Join(portPath, target)
	}
	// .../switches/<name>/ports/<no>
	parts := strings.Split(strings.Trim(resolved, "/"), "/")
	if len(parts) < 4 || parts[len(parts)-2] != "ports" {
		return "", 0, false
	}
	no, err := strconv.ParseUint(parts[len(parts)-1], 10, 32)
	if err != nil {
		return "", 0, false
	}
	return parts[len(parts)-3], uint32(no), true
}

// AddHost records a host object (name, mac, ip, attachment) under hosts/.
func AddHost(p *vfs.Proc, region, name, mac, ip, attachedSwitch string, attachedPort uint32) error {
	base := vfs.Join(region, DirHosts, name)
	if !p.Exists(base) {
		if err := p.Mkdir(base, 0o755); err != nil {
			return err
		}
	}
	for file, content := range map[string]string{
		"mac":    mac,
		"ip":     ip,
		"switch": attachedSwitch,
		"port":   strconv.FormatUint(uint64(attachedPort), 10),
	} {
		if err := p.WriteString(vfs.Join(base, file), content+"\n"); err != nil {
			return err
		}
	}
	return nil
}
