package yancfs

import (
	"strconv"
	"sync/atomic"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// eventSeq numbers delivered events so message directory names are unique
// and ordered across the process.
var eventSeq atomic.Uint64

// Subscribe creates a per-application private event buffer: a directory
// under <region>/events named after the app (§3.5: "each application
// interested in packet-in events creates a directory in the events/
// subdirectory"). It returns the buffer path and a watch delivering a
// Create event per message.
func Subscribe(p *vfs.Proc, region, app string) (string, *vfs.Watch, error) {
	buf := vfs.Join(region, DirEvents, app)
	if !p.Exists(buf) {
		if err := p.Mkdir(buf, 0o755); err != nil {
			return "", nil, err
		}
	}
	w, err := p.AddWatch(buf, vfs.OpCreate)
	if err != nil {
		return "", nil, err
	}
	return buf, w, nil
}

// Subscribers lists the event buffer paths in a region.
func Subscribers(p *vfs.Proc, region string) ([]string, error) {
	dir := vfs.Join(region, DirEvents)
	entries, err := p.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, vfs.Join(dir, e.Name))
		}
	}
	return out, nil
}

// PacketInEvent is the parsed form of a packet-in message directory.
type PacketInEvent struct {
	Switch   string
	BufferID uint32
	InPort   uint32
	Reason   uint8
	TotalLen uint16
	Data     []byte
}

// DeliverPacketIn writes a packet-in message into every subscriber buffer
// in the region, concurrently visible to all of them ("our current design
// concurrently feeds packet-in messages to all applications interested in
// such events"). Each message is a subdirectory containing one file per
// attribute plus the raw frame bytes. The write is transactional so an
// application never observes a half-written message.
func (y *FS) DeliverPacketIn(region, switchName string, pi *openflow.PacketIn) error {
	subs, err := Subscribers(y.root, region)
	if err != nil {
		return err
	}
	if len(subs) == 0 {
		return nil
	}
	seq := eventSeq.Add(1)
	name := "pktin-" + pad12(seq)
	return y.vfs.WithTx(func(tx *vfs.Tx) error {
		for _, buf := range subs {
			base := vfs.Join(buf, name)
			if err := tx.Mkdir(base, 0o755, 0, 0); err != nil {
				return err
			}
			files := map[string]string{
				"switch":    switchName + "\n",
				"buffer_id": strconv.FormatUint(uint64(pi.BufferID), 10) + "\n",
				"in_port":   strconv.FormatUint(uint64(pi.InPort), 10) + "\n",
				"reason":    strconv.FormatUint(uint64(pi.Reason), 10) + "\n",
				"total_len": strconv.FormatUint(uint64(pi.TotalLen), 10) + "\n",
			}
			for f, content := range files {
				if err := tx.WriteFile(vfs.Join(base, f), []byte(content), 0o644, 0, 0); err != nil {
					return err
				}
			}
			if err := tx.WriteFile(vfs.Join(base, "data"), pi.Data, 0o644, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
}

// pad12 zero-pads to 12 digits so lexicographic order equals numeric.
func pad12(v uint64) string {
	s := strconv.FormatUint(v, 10)
	for len(s) < 12 {
		s = "0" + s
	}
	return s
}

// ReadPacketIn parses a packet-in message directory.
func ReadPacketIn(p *vfs.Proc, msgPath string) (PacketInEvent, error) {
	var ev PacketInEvent
	var err error
	if ev.Switch, err = p.ReadString(vfs.Join(msgPath, "switch")); err != nil {
		return ev, err
	}
	read32 := func(name string) uint32 {
		s, err2 := p.ReadString(vfs.Join(msgPath, name))
		if err2 != nil {
			return 0
		}
		v, _ := strconv.ParseUint(s, 10, 32)
		return uint32(v)
	}
	ev.BufferID = read32("buffer_id")
	ev.InPort = read32("in_port")
	ev.Reason = uint8(read32("reason"))
	ev.TotalLen = uint16(read32("total_len"))
	if ev.Data, err = p.ReadFile(vfs.Join(msgPath, "data")); err != nil {
		return ev, err
	}
	return ev, nil
}

// ConsumePacketIn reads and removes a message from the buffer, the
// typical handle-then-delete pattern of an event-driven app.
func ConsumePacketIn(p *vfs.Proc, msgPath string) (PacketInEvent, error) {
	ev, err := ReadPacketIn(p, msgPath)
	if err != nil {
		return ev, err
	}
	return ev, p.RemoveAll(msgPath)
}

// PendingEvents lists message directories in a buffer in delivery order.
func PendingEvents(p *vfs.Proc, bufPath string) ([]string, error) {
	entries, err := p.ReadDir(bufPath)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, vfs.Join(bufPath, e.Name))
		}
	}
	return out, nil
}
