package yancfs

import (
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

// The packet-in data path (§3.5) is zero-copy and batched:
//
//   - Each message's files (switch, buffer_id, in_port, reason, total_len,
//     data) are written ONCE into a staging entry under the region's
//     hidden <region>/events/.spool directory, then hard-linked into every
//     subscriber buffer with Tx.LinkDir and unlinked from the spool — all
//     inside one transaction. The payload block exists once regardless of
//     subscriber count; the file inode's nlink is its reference count and
//     the block is reclaimed when the last subscriber removes its message
//     directory.
//   - DeliverPacketInBatch amortizes one tree write lock and one
//     watch-dispatch drain over a whole burst of packet-ins.
//   - The subscriber list per region is cached: it is rebuilt only when a
//     directory event on <region>/events (or a synchronous semantics hook)
//     marks it stale, not ReadDir'd per packet.
//   - Buffers are bounded (SetEventBufferDepth): a full buffer drops its
//     oldest quarter and writes an "overflow" marker file holding the
//     cumulative drop count, mirroring the watch-overflow semantics, so
//     one stuck application cannot grow without bound or wedge delivery.
//
// Lock order: the spool bookkeeping mutex (eventState.mu) nests strictly
// inside the vfs tree lock — semantics hooks and the delivery transaction
// take it while the tree is locked. Code holding eventState.mu must never
// call back into the file system.

// SpoolDir is the hidden staging directory under <region>/events where a
// message's files are written once before being linked into subscriber
// buffers. Dot-named so subscriber listings skip it.
const SpoolDir = ".spool"

// OverflowMarker is the file written into a buffer that hit its depth
// bound; its content is the cumulative number of messages dropped from
// that buffer (the event-buffer analog of the watch Overflow event).
const OverflowMarker = "overflow"

// DefaultEventBufferDepth bounds the pending messages per subscriber
// buffer when SetEventBufferDepth was not called.
const DefaultEventBufferDepth = 1024

const msgPrefix = "pktin-"

// batchBuckets is the number of power-of-two batch-size histogram buckets
// (bucket i counts batches of size <= 2^i).
const batchBuckets = 17

// eventSeq numbers delivered events so message directory names are unique
// and ordered across the process.
var eventSeq atomic.Uint64

// appStats is the live per-buffer accounting, shared between the cached
// subscriber list and the ev.apps registry.
type appStats struct {
	delivered atomic.Uint64
	drops     atomic.Uint64
	depth     atomic.Int64
}

// subRef pairs a buffer path with its stats in the cached subscriber list.
type subRef struct {
	path  string
	ref   vfs.DirRef // pre-resolved buffer dir; revalidated per use
	stats *appStats
}

// regionSubs caches one region's subscriber buffers. stale flips on any
// structural change under <region>/events — synchronously via the events
// directory's semantics hooks, and as a backstop via w (which also
// catches hook-less paths like rename).
type regionSubs struct {
	w     *vfs.Watch
	stale atomic.Bool
	bufs  []subRef // guarded by eventState.mu
}

// payloadRef tracks one spooled message's outstanding subscriber links so
// /.proc/events can prove blocks are reclaimed when the count hits zero.
type payloadRef struct {
	links int
	bytes int
}

// eventState is the FS's packet-in delivery state. The mutex guards the
// maps and cached slices; counters are atomics so snapshot reads never
// block delivery. It nests inside the vfs tree lock (see the lock-order
// note above).
type eventState struct {
	mu      sync.Mutex
	regions map[string]*regionSubs
	apps    map[string]*appStats   // buffer path -> live stats
	refs    map[uint64]*payloadRef // msg seq -> outstanding links

	depthCfg atomic.Int64

	msgs        atomic.Uint64
	deliveries  atomic.Uint64
	batches     atomic.Uint64
	drops       atomic.Uint64
	copiedBytes atomic.Uint64
	linkedBytes atomic.Uint64
	blocksLive  atomic.Int64
	bytesLive   atomic.Int64
	rebuilds    atomic.Uint64
	batchHist   [batchBuckets]atomic.Uint64
}

// SetEventBufferDepth bounds the pending messages per subscriber buffer;
// n <= 0 restores DefaultEventBufferDepth. When a delivery finds a buffer
// at the bound it drops that buffer's oldest quarter (plus room for the
// incoming burst) and refreshes the buffer's overflow marker.
func (y *FS) SetEventBufferDepth(n int) { y.ev.depthCfg.Store(int64(n)) }

func (y *FS) eventDepth() int {
	if d := y.ev.depthCfg.Load(); d > 0 {
		return int(d)
	}
	return DefaultEventBufferDepth
}

// Subscribe creates a per-application private event buffer: a directory
// under <region>/events named after the app (§3.5: "each application
// interested in packet-in events creates a directory in the events/
// subdirectory"). It returns the buffer path and a watch delivering a
// Create event per message. Dot-prefixed names are reserved for the
// delivery spool.
func Subscribe(p *vfs.Proc, region, app string) (string, *vfs.Watch, error) {
	if app == "" || strings.HasPrefix(app, ".") {
		return "", nil, fmt.Errorf("yancfs: subscribe %q: %w", app, vfs.ErrInvalid)
	}
	buf := vfs.Join(region, DirEvents, app)
	if !p.Exists(buf) {
		if err := p.Mkdir(buf, 0o755); err != nil {
			return "", nil, err
		}
	}
	w, err := p.AddWatch(buf, vfs.OpCreate)
	if err != nil {
		return "", nil, err
	}
	return buf, w, nil
}

// Subscribers lists the event buffer paths in a region, skipping the
// dot-named delivery spool.
func Subscribers(p *vfs.Proc, region string) ([]string, error) {
	dir := vfs.Join(region, DirEvents)
	entries, err := p.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && !strings.HasPrefix(e.Name, ".") {
			out = append(out, vfs.Join(dir, e.Name))
		}
	}
	return out, nil
}

// subscribers returns the region's cached subscriber list, rebuilding it
// only when marked stale. Never called with eventState.mu held; the vfs
// reads here run outside it.
func (y *FS) subscribers(region string) ([]subRef, error) {
	y.ev.mu.Lock()
	if y.ev.regions == nil {
		y.ev.regions = make(map[string]*regionSubs)
	}
	rs := y.ev.regions[region]
	y.ev.mu.Unlock()
	if rs == nil {
		// First delivery into this region: install the invalidation watch
		// before the first listing so nothing between them is missed.
		w, err := y.root.AddWatch(vfs.Join(region, DirEvents),
			vfs.OpCreate|vfs.OpRemove|vfs.OpRename)
		if err != nil {
			return nil, err
		}
		rs = &regionSubs{w: w}
		rs.stale.Store(true)
		y.ev.mu.Lock()
		if cur := y.ev.regions[region]; cur != nil {
			rs = cur
			y.ev.mu.Unlock()
			w.Close()
		} else {
			y.ev.regions[region] = rs
			y.ev.mu.Unlock()
		}
	}
	// Drain the invalidation watch without blocking: any structural event
	// under events/ since the last delivery invalidates the cache. The
	// semantics hooks invalidate synchronously as well, so a Subscribe
	// that returned before this call is always visible even though watch
	// dispatch is asynchronous.
drain:
	for {
		select {
		case _, ok := <-rs.w.C:
			rs.stale.Store(true)
			if !ok {
				break drain
			}
		default:
			break drain
		}
	}
	if rs.stale.CompareAndSwap(true, false) {
		names, err := Subscribers(y.root, region)
		if err != nil {
			rs.stale.Store(true)
			y.ev.mu.Lock()
			delete(y.ev.regions, region)
			y.ev.mu.Unlock()
			rs.w.Close()
			return nil, err
		}
		// Resolve buffer dir handles before taking eventState.mu: DirRef
		// acquires the tree lock, and eventState.mu must only ever nest
		// inside it (the semantics hooks hold the tree write lock when they
		// take ev.mu). Delivery then fans out through the handles with no
		// per-message path walks. A buffer removed between the listing and
		// here is skipped — its removal already re-marked the cache stale.
		bufs := make([]subRef, 0, len(names))
		for _, bp := range names {
			ref, err := y.root.DirRef(bp)
			if err != nil {
				continue
			}
			bufs = append(bufs, subRef{path: bp, ref: ref})
		}
		y.ev.mu.Lock()
		if y.ev.apps == nil {
			y.ev.apps = make(map[string]*appStats)
		}
		for i := range bufs {
			st := y.ev.apps[bufs[i].path]
			if st == nil {
				st = &appStats{}
				y.ev.apps[bufs[i].path] = st
			}
			bufs[i].stats = st
		}
		rs.bufs = bufs
		y.ev.mu.Unlock()
		y.ev.rebuilds.Add(1)
	}
	y.ev.mu.Lock()
	bufs := rs.bufs
	y.ev.mu.Unlock()
	return bufs, nil
}

// invalidateEvents marks the region cache owning eventsDir stale. Called
// from semantics hooks under the tree write lock — it must only touch
// eventState, never the file system.
func (y *FS) invalidateEvents(eventsDir string) {
	region := vfs.Dir(eventsDir)
	y.ev.mu.Lock()
	if rs := y.ev.regions[region]; rs != nil {
		rs.stale.Store(true)
	}
	y.ev.mu.Unlock()
}

// onEventBufferMkdir marks a new per-application event buffer: message
// directories removed from it feed the payload refcounts, and the
// subscriber cache is invalidated synchronously so a Subscribe is visible
// to the very next delivery.
func (y *FS) onEventBufferMkdir(tx *vfs.Tx, dir, name string) error {
	if err := tx.SetSemantics(vfs.Join(dir, name), &vfs.DirSemantics{
		RecursiveRmdir: true,
		OnRemove:       y.onEventMessageRemove,
	}); err != nil {
		return err
	}
	y.invalidateEvents(dir)
	return nil
}

// onEventBufferRemove runs when a buffer (or anything else) is removed
// from an events directory: drop the buffer's accounting and invalidate
// the cache.
func (y *FS) onEventBufferRemove(tx *vfs.Tx, dir, name string, kind vfs.NodeKind) {
	if kind == vfs.KindDir {
		y.ev.mu.Lock()
		delete(y.ev.apps, vfs.Join(dir, name))
		y.ev.mu.Unlock()
	}
	y.invalidateEvents(dir)
}

// onEventMessageRemove runs when a message directory leaves a subscriber
// buffer (consume, overflow drop, or buffer teardown — the recursive
// rmdir fires it per child). It decrements the payload block's link count
// and frees the accounting when the last link goes.
func (y *FS) onEventMessageRemove(tx *vfs.Tx, dir, name string, kind vfs.NodeKind) {
	if kind != vfs.KindDir {
		return
	}
	seq, ok := parseMsgSeq(name)
	if !ok {
		return
	}
	y.ev.mu.Lock()
	defer y.ev.mu.Unlock()
	ref := y.ev.refs[seq]
	if ref == nil {
		return
	}
	if st := y.ev.apps[dir]; st != nil {
		st.depth.Add(-1)
	}
	ref.links--
	if ref.links <= 0 {
		delete(y.ev.refs, seq)
		y.ev.blocksLive.Add(-1)
		y.ev.bytesLive.Add(-int64(ref.bytes))
	}
}

// PacketInEvent is the parsed form of a packet-in message directory.
type PacketInEvent struct {
	Switch   string
	BufferID uint32
	InPort   uint32
	Reason   uint8
	TotalLen uint16
	Data     []byte
}

// DeliverPacketIn writes a packet-in message into every subscriber buffer
// in the region, concurrently visible to all of them ("our current design
// concurrently feeds packet-in messages to all applications interested in
// such events"). It is the single-message form of DeliverPacketInBatch.
func (y *FS) DeliverPacketIn(region, switchName string, pi *openflow.PacketIn) error {
	return y.DeliverPacketInBatch(region, switchName, []*openflow.PacketIn{pi})
}

// DeliverPacketInBatch delivers a burst of packet-in messages under one
// transaction and one watch-dispatch drain. Each message is staged once
// in the region's spool — one directory of immutable 0444 files — and
// hard-linked into every subscriber buffer, so the payload is copied once
// no matter how many applications subscribe. The write is transactional:
// an application never observes a half-written message.
func (y *FS) DeliverPacketInBatch(region, switchName string, pis []*openflow.PacketIn) error {
	if len(pis) == 0 {
		return nil
	}
	region = vfs.Clean(region)
	subs, err := y.subscribers(region)
	if err != nil {
		return err
	}
	y.ev.batches.Add(1)
	y.observeBatch(len(pis))
	if len(subs) == 0 {
		return nil
	}
	maxDepth := y.eventDepth()
	spool := vfs.Join(region, DirEvents, SpoolDir)
	swLine := []byte(switchName + "\n")
	return y.vfs.WithTx(func(tx *vfs.Tx) error {
		if !tx.Exists(spool) {
			if err := tx.Mkdir(spool, 0o700, 0, 0); err != nil {
				return err
			}
		}
		// Each message queues ~20 spool events plus one link per
		// subscriber; reserving up front keeps the critical section free
		// of slice growth.
		tx.ReserveEvents(len(pis) * (20 + len(subs)))
		// Make room for the whole burst up front: one listing per
		// overflowing buffer per batch, not one per message.
		for _, sub := range subs {
			if int(sub.stats.depth.Load())+len(pis) > maxDepth {
				y.dropOldest(tx, sub, maxDepth, len(pis))
			}
		}
		var nb, ni, nr, nt [24]byte
		refs := make([]vfs.DirRef, len(subs))
		for i, sub := range subs {
			refs[i] = sub.ref
		}
		files := make([]vfs.FileData, 6)
		for _, pi := range pis {
			seq := eventSeq.Add(1)
			name := msgName(seq)
			stage := vfs.Join(spool, name)
			num := func(buf *[24]byte, v uint64) []byte {
				return append(strconv.AppendUint(buf[:0], v, 10), '\n')
			}
			files[0] = vfs.FileData{Name: "switch", Data: swLine}
			files[1] = vfs.FileData{Name: "buffer_id", Data: num(&nb, uint64(pi.BufferID))}
			files[2] = vfs.FileData{Name: "in_port", Data: num(&ni, uint64(pi.InPort))}
			files[3] = vfs.FileData{Name: "reason", Data: num(&nr, uint64(pi.Reason))}
			files[4] = vfs.FileData{Name: "total_len", Data: num(&nt, uint64(pi.TotalLen))}
			files[5] = vfs.FileData{Name: "data", Data: pi.Data}
			copied := 0
			for _, f := range files {
				copied += len(f.Data)
			}
			if err := tx.WriteTree(stage, files, 0o755, 0o444, 0, 0); err != nil {
				return err
			}
			links := 0
			// A detached destination buffer is skipped inside the fan-out
			// (the subscriber was removed since the cache was read); an
			// error here means the staged source itself is broken.
			err := tx.LinkDirFanoutRefs(stage, refs, name, 0o755, 0, 0, func(i int) {
				subs[i].stats.delivered.Add(1)
				subs[i].stats.depth.Add(1)
				links++
			})
			if err != nil {
				return err
			}
			// Unlink the staging entry: the payload files live on through
			// the subscriber links, so nothing is ever stranded in the
			// spool.
			if err := tx.Remove(stage); err != nil {
				return err
			}
			y.ev.msgs.Add(1)
			y.ev.copiedBytes.Add(uint64(copied))
			if links > 0 {
				y.ev.deliveries.Add(uint64(links))
				y.ev.linkedBytes.Add(uint64(copied) * uint64(links))
				y.ev.mu.Lock()
				if y.ev.refs == nil {
					y.ev.refs = make(map[uint64]*payloadRef)
				}
				y.ev.refs[seq] = &payloadRef{links: links, bytes: copied}
				y.ev.mu.Unlock()
				y.ev.blocksLive.Add(1)
				y.ev.bytesLive.Add(int64(copied))
			}
		}
		return nil
	})
}

// dropOldest enforces the buffer depth bound: remove the oldest quarter
// of the buffer's messages plus room for the incoming burst (amortizing
// the listing over many deliveries) and refresh the overflow marker with
// the cumulative drop count.
func (y *FS) dropOldest(tx *vfs.Tx, sub subRef, maxDepth, incoming int) {
	names, err := tx.DirNames(sub.path, nil)
	if err != nil {
		return
	}
	seqs := make([]uint64, 0, len(names))
	for _, n := range names {
		if s, ok := parseMsgSeq(n); ok {
			seqs = append(seqs, s)
		}
	}
	keep := maxDepth - maxDepth/4
	if keep > maxDepth-incoming {
		keep = maxDepth - incoming
	}
	if keep >= maxDepth {
		keep = maxDepth - 1
	}
	if keep < 0 {
		keep = 0
	}
	drop := len(seqs) - keep
	if drop <= 0 {
		return
	}
	// Sorting the parsed sequence numbers beats a sorted ReadDir: integer
	// compares, and only the doomed prefix gets its name rebuilt.
	slices.Sort(seqs)
	doomed := make([]string, drop)
	for i, s := range seqs[:drop] {
		doomed[i] = msgName(s)
	}
	removed, err := tx.RemoveChildren(sub.path, doomed)
	if err != nil || removed == 0 {
		return
	}
	total := sub.stats.drops.Add(uint64(removed))
	y.ev.drops.Add(uint64(removed))
	marker := append(strconv.AppendUint(nil, total, 10), '\n')
	//yancvet:allow errdrop best-effort marker; failing to note the overflow must not abort the drop path
	_ = tx.WriteFile(vfs.Join(sub.path, OverflowMarker), marker, 0o644, 0, 0)
}

func (y *FS) observeBatch(n int) {
	idx := bits.Len(uint(n - 1)) // batch of 2^i lands in bucket i
	if idx >= batchBuckets {
		idx = batchBuckets - 1
	}
	y.ev.batchHist[idx].Add(1)
}

// EventStats is a snapshot of the packet-in delivery counters, published
// as /.proc/events/stats.
type EventStats struct {
	Messages      uint64 // packet-ins spooled
	Deliveries    uint64 // message x subscriber links created
	Batches       uint64 // DeliverPacketInBatch calls
	Drops         uint64 // messages dropped by the depth bound
	CopiedBytes   uint64 // bytes written once into the spool
	LinkedBytes   uint64 // bytes made visible via links, no copy
	BlocksLive    int64  // spooled messages with outstanding links
	BytesLive     int64  // bytes held by live blocks
	CacheRebuilds uint64 // subscriber-cache invalidation rebuilds
	BatchSizes    [batchBuckets]uint64
}

// EventStats snapshots the delivery counters.
func (y *FS) EventStats() EventStats {
	s := EventStats{
		Messages:      y.ev.msgs.Load(),
		Deliveries:    y.ev.deliveries.Load(),
		Batches:       y.ev.batches.Load(),
		Drops:         y.ev.drops.Load(),
		CopiedBytes:   y.ev.copiedBytes.Load(),
		LinkedBytes:   y.ev.linkedBytes.Load(),
		BlocksLive:    y.ev.blocksLive.Load(),
		BytesLive:     y.ev.bytesLive.Load(),
		CacheRebuilds: y.ev.rebuilds.Load(),
	}
	for i := range s.BatchSizes {
		s.BatchSizes[i] = y.ev.batchHist[i].Load()
	}
	return s
}

// AppEventInfo is one subscriber buffer's accounting row.
type AppEventInfo struct {
	Path      string
	Delivered uint64
	Drops     uint64
	Depth     int64
}

// EventApps snapshots per-buffer delivery accounting, sorted by path.
// Buffers whose directory no longer exists (e.g. renamed away) are pruned
// from the registry here, lazily.
func (y *FS) EventApps() []AppEventInfo {
	y.ev.mu.Lock()
	paths := make([]string, 0, len(y.ev.apps))
	for p := range y.ev.apps {
		paths = append(paths, p)
	}
	y.ev.mu.Unlock()
	sort.Strings(paths)
	out := make([]AppEventInfo, 0, len(paths))
	for _, p := range paths {
		if !y.root.Exists(p) {
			y.ev.mu.Lock()
			delete(y.ev.apps, p)
			y.ev.mu.Unlock()
			continue
		}
		y.ev.mu.Lock()
		st := y.ev.apps[p]
		y.ev.mu.Unlock()
		if st == nil {
			continue
		}
		out = append(out, AppEventInfo{
			Path:      p,
			Delivered: st.delivered.Load(),
			Drops:     st.drops.Load(),
			Depth:     st.depth.Load(),
		})
	}
	return out
}

// msgName formats "pktin-<pad12(seq)>" into one allocation; the spool
// entry and every subscriber's linked message directory share the name.
func msgName(seq uint64) string {
	var b [len(msgPrefix) + 12]byte
	copy(b[:], msgPrefix)
	if !encode12(b[len(msgPrefix):], seq) {
		return msgPrefix + strconv.FormatUint(seq, 10)
	}
	return string(b[:])
}

// pad12 zero-pads to 12 digits so lexicographic order equals numeric,
// using a fixed-width encode instead of repeated string concatenation.
func pad12(v uint64) string {
	var b [12]byte
	if !encode12(b[:], v) {
		return strconv.FormatUint(v, 10)
	}
	return string(b[:])
}

// encode12 writes v right-aligned, zero-padded into the 12-byte dst,
// reporting false when v needs more than 12 digits.
func encode12(dst []byte, v uint64) bool {
	for i := 11; i >= 0; i-- {
		dst[i] = byte('0' + v%10)
		v /= 10
	}
	return v == 0
}

// parseMsgSeq extracts the sequence number from a "pktin-…" name.
func parseMsgSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, msgPrefix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(msgPrefix):], 10, 64)
	return v, err == nil
}

// ReadPacketIn parses a packet-in message directory.
func ReadPacketIn(p *vfs.Proc, msgPath string) (PacketInEvent, error) {
	var ev PacketInEvent
	var err error
	if ev.Switch, err = p.ReadString(vfs.Join(msgPath, "switch")); err != nil {
		return ev, err
	}
	read32 := func(name string) uint32 {
		s, err2 := p.ReadString(vfs.Join(msgPath, name))
		if err2 != nil {
			return 0
		}
		v, _ := strconv.ParseUint(s, 10, 32)
		return uint32(v)
	}
	ev.BufferID = read32("buffer_id")
	ev.InPort = read32("in_port")
	ev.Reason = uint8(read32("reason"))
	ev.TotalLen = uint16(read32("total_len"))
	if ev.Data, err = p.ReadFile(vfs.Join(msgPath, "data")); err != nil {
		return ev, err
	}
	return ev, nil
}

// ConsumePacketIn reads and removes a message from the buffer, the
// typical handle-then-delete pattern of an event-driven app. Removing the
// message directory drops the application's links on the shared payload
// block; the block itself is reclaimed when the last subscriber consumes.
func ConsumePacketIn(p *vfs.Proc, msgPath string) (PacketInEvent, error) {
	ev, err := ReadPacketIn(p, msgPath)
	if err != nil {
		return ev, err
	}
	return ev, p.RemoveAll(msgPath)
}

// PendingEvents lists message directories in a buffer in delivery order.
// The overflow marker and other plain files are not messages.
func PendingEvents(p *vfs.Proc, bufPath string) ([]string, error) {
	entries, err := p.ReadDir(bufPath)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, vfs.Join(bufPath, e.Name))
		}
	}
	return out, nil
}
