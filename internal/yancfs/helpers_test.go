package yancfs

import (
	"errors"
	"testing"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
)

func TestPathHelpers(t *testing.T) {
	if SwitchPath("sw1") != "/switches/sw1" {
		t.Errorf("SwitchPath = %q", SwitchPath("sw1"))
	}
	if FlowPath("sw1", "f1") != "/switches/sw1/flows/f1" {
		t.Errorf("FlowPath = %q", FlowPath("sw1", "f1"))
	}
	if PortPath("sw1", 3) != "/switches/sw1/ports/3" {
		t.Errorf("PortPath = %q", PortPath("sw1", 3))
	}
}

func TestListAndDeleteFlows(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	for _, name := range []string{"b-flow", "a-flow", "c-flow"} {
		if _, err := WriteFlow(p, vfs.Join(swPath, "flows", name), FlowSpec{Priority: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// A stray file in flows/ is not a flow.
	if err := p.WriteString(vfs.Join(swPath, "flows", "README"), "not a flow"); err != nil {
		t.Fatal(err)
	}
	names, err := ListFlows(p, swPath)
	if err != nil || len(names) != 3 || names[0] != "a-flow" {
		t.Fatalf("ListFlows = %v %v", names, err)
	}
	if err := DeleteFlow(p, vfs.Join(swPath, "flows", "b-flow")); err != nil {
		t.Fatal(err)
	}
	names, _ = ListFlows(p, swPath)
	if len(names) != 2 {
		t.Fatalf("after delete = %v", names)
	}
	// Listing flows of a missing switch errors.
	if _, err := ListFlows(p, "/switches/ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("missing switch = %v", err)
	}
}

func TestReadFlowToleratesUnknownAndCorruptEntries(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	flowPath := vfs.Join(swPath, "flows", "f")
	if _, err := WriteFlow(p, flowPath, FlowSpec{
		Priority: 7,
		Actions:  []openflow.Action{openflow.Output(2)},
	}); err != nil {
		t.Fatal(err)
	}
	// Unknown files are ignored.
	if err := p.WriteString(vfs.Join(flowPath, "x-custom"), "whatever"); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString(vfs.Join(flowPath, "match.not_a_field"), "1"); err != nil {
		t.Fatal(err)
	}
	spec, err := ReadFlow(p, flowPath)
	if err != nil || spec.Priority != 7 {
		t.Fatalf("spec = %+v %v", spec, err)
	}
	// A corrupt match value is a persistent error (not a seqlock retry).
	if err := p.WriteString(vfs.Join(flowPath, "match.nw_src"), "bogus"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlow(p, flowPath); err == nil {
		t.Fatal("corrupt match accepted")
	}
	// Legacy "timeout" file maps to idle (Figure 3 spelling).
	if err := p.Remove(vfs.Join(flowPath, "match.nw_src")); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString(vfs.Join(flowPath, "timeout"), "33"); err != nil {
		t.Fatal(err)
	}
	spec, err = ReadFlow(p, flowPath)
	if err != nil || spec.IdleTimeout != 33 {
		t.Fatalf("timeout alias = %+v %v", spec, err)
	}
}

func TestFlowVersionErrors(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	if _, err := FlowVersion(p, "/switches/ghost/flows/f"); err == nil {
		t.Fatal("missing flow version must error")
	}
	// CommitFlow on a dir without a version file starts at 1.
	swPath, _ := CreateSwitch(p, "/", "sw1")
	raw := vfs.Join(swPath, "flows-raw")
	if err := p.Mkdir(raw, 0o755); err != nil {
		t.Fatal(err)
	}
	v, err := CommitFlow(p, raw)
	if err != nil || v != 1 {
		t.Fatalf("fresh commit = %d %v", v, err)
	}
}

func TestSubscribeIsIdempotent(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	buf1, w1, err := Subscribe(p, "/", "app")
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	buf2, w2, err := Subscribe(p, "/", "app")
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if buf1 != buf2 {
		t.Errorf("buffers differ: %q %q", buf1, buf2)
	}
}

func TestPeerOnDanglingLink(t *testing.T) {
	y := newFS(t)
	p := y.Root()
	swPath, _ := CreateSwitch(p, "/", "sw1")
	if err := PopulatePort(p, swPath, openflow.PortInfo{No: 1, Name: "p1"}); err != nil {
		t.Fatal(err)
	}
	portPath := vfs.Join(swPath, "ports", "1")
	if _, _, ok := Peer(p, portPath); ok {
		t.Fatal("peer on unlinked port")
	}
	// SetPeer replaces even a dangling symlink left by a removed switch.
	sw2, _ := CreateSwitch(p, "/", "sw2")
	if err := PopulatePort(p, sw2, openflow.PortInfo{No: 2, Name: "p2"}); err != nil {
		t.Fatal(err)
	}
	target := vfs.Join(sw2, "ports", "2")
	if err := SetPeer(p, portPath, target); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(sw2); err != nil { // leaves the peer dangling
		t.Fatal(err)
	}
	sw3, _ := CreateSwitch(p, "/", "sw3")
	if err := PopulatePort(p, sw3, openflow.PortInfo{No: 5, Name: "p5"}); err != nil {
		t.Fatal(err)
	}
	if err := SetPeer(p, portPath, vfs.Join(sw3, "ports", "5")); err != nil {
		t.Fatalf("SetPeer over dangling link: %v", err)
	}
	if name, no, ok := Peer(p, portPath); !ok || name != "sw3" || no != 5 {
		t.Fatalf("peer = %s %d %v", name, no, ok)
	}
}
