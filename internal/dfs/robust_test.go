package dfs

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"yanc/internal/yancfs"
)

// TestServerSurvivesGarbageConnections throws random bytes at the server
// port: sessions must fail cleanly and the server must keep serving
// legitimate mounts.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, r.Intn(512))
		r.Read(junk)
		_, _ = c.Write(junk)
		c.Close()
	}
	// A half-open connection that sends nothing.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	time.Sleep(20 * time.Millisecond)
	// Legit clients still work.
	c := mount(t, addr, Strict)
	if err := c.Mkdir("/switches/after-garbage", 0o755); err != nil {
		t.Fatal(err)
	}
	if !c.IsDir("/switches/after-garbage/flows") {
		t.Fatal("server semantics broken after garbage")
	}
}
