package dfs

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"

	"yanc/internal/vfs"
)

// Server exports one file system over TCP. Each accepted connection gets
// its own credential (from the client hello) and its own watch set.
type Server struct {
	fs *vfs.FS

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	counters serverCounters
}

// NewServer creates a server exporting fs.
func NewServer(fs *vfs.FS) *Server {
	return &Server{fs: fs, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.ListenOn(l)
}

// ListenOn starts accepting on an existing listener — the hook a fault
// harness (or any custom transport) uses to interpose on the server's
// connections. The server takes ownership of l.
func (s *Server) ListenOn(l net.Listener) (string, error) {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the server and drops all client connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serve(c)
	}
}

// session is one client connection's state.
type session struct {
	server  *Server
	conn    net.Conn
	enc     *gob.Encoder
	encMu   sync.Mutex
	proc    *vfs.Proc
	watchMu sync.Mutex
	watches map[uint64]*vfs.Watch
}

func (s *Server) serve(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	dec := gob.NewDecoder(c)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	s.counters.sessions.Add(1)
	sess := &session{
		server:  s,
		conn:    c,
		enc:     gob.NewEncoder(c),
		proc:    s.fs.Proc(vfs.Cred{UID: h.UID, GID: h.GID, Groups: h.Groups}),
		watches: make(map[uint64]*vfs.Watch),
	}
	defer sess.closeWatches()
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				_ = err
			}
			return
		}
		rsp := sess.handle(&req)
		if rsp == nil {
			continue // watch registration answers asynchronously
		}
		if err := sess.send(rsp); err != nil {
			return
		}
	}
}

func (sess *session) send(rsp *response) error {
	sess.encMu.Lock()
	defer sess.encMu.Unlock()
	return sess.enc.Encode(rsp)
}

func (sess *session) closeWatches() {
	sess.watchMu.Lock()
	watches := sess.watches
	sess.watches = map[uint64]*vfs.Watch{}
	sess.watchMu.Unlock()
	for _, w := range watches {
		w.Close()
	}
}

// handle executes one request. It returns nil when the reply is produced
// asynchronously.
func (sess *session) handle(req *request) *response {
	rsp := &response{ID: req.ID}
	fail := func(err error) *response {
		if err != nil {
			rsp.Err = err.Error()
			rsp.ErrKind = errKind(err)
		}
		sess.server.countRequest(req.Op, err != nil)
		return rsp
	}
	p := sess.proc
	switch req.Op {
	case opMkdir:
		return fail(p.Mkdir(req.Path, vfs.FileMode(req.Mode)))
	case opMkdirAll:
		return fail(p.MkdirAll(req.Path, vfs.FileMode(req.Mode)))
	case opWriteFile:
		return fail(p.WriteFile(req.Path, req.Data, vfs.FileMode(req.Mode)))
	case opAppendFile:
		return fail(p.AppendFile(req.Path, req.Data, vfs.FileMode(req.Mode)))
	case opReadFile:
		data, err := p.ReadFile(req.Path)
		rsp.Data = data
		return fail(err)
	case opRemove:
		return fail(p.Remove(req.Path))
	case opRemoveAll:
		return fail(p.RemoveAll(req.Path))
	case opRename:
		return fail(p.Rename(req.Path, req.Path2))
	case opSymlink:
		return fail(p.Symlink(req.Path2, req.Path))
	case opReadlink:
		tgt, err := p.Readlink(req.Path)
		rsp.Data = []byte(tgt)
		return fail(err)
	case opLink:
		return fail(p.Link(req.Path, req.Path2))
	case opReadDir:
		entries, err := p.ReadDir(req.Path)
		rsp.Entries = entries
		return fail(err)
	case opStat:
		st, err := p.Stat(req.Path)
		rsp.Stat = st
		return fail(err)
	case opLstat:
		st, err := p.Lstat(req.Path)
		rsp.Stat = st
		return fail(err)
	case opChmod:
		return fail(p.Chmod(req.Path, vfs.FileMode(req.Mode)))
	case opChown:
		return fail(p.Chown(req.Path, req.UID, req.GID))
	case opSetXattr:
		return fail(p.SetXattr(req.Path, req.Path2, req.Data))
	case opGetXattr:
		v, err := p.GetXattr(req.Path, req.Path2)
		rsp.Data = v
		return fail(err)
	case opListXattr:
		names, err := p.ListXattr(req.Path)
		rsp.Names = names
		return fail(err)
	case opRemoveXattr:
		return fail(p.RemoveXattr(req.Path, req.Path2))
	case opGlob:
		names, err := p.Glob(req.Path)
		rsp.Names = names
		return fail(err)
	case opBatch:
		for i := range req.Sub {
			if sub := sess.handle(&req.Sub[i]); sub != nil && sub.Err != "" {
				rsp.Err = sub.Err
				rsp.ErrKind = sub.ErrKind
				break
			}
		}
		sess.server.countRequest(opBatch, rsp.Err != "")
		return rsp
	case opWatch:
		opts := []vfs.WatchOption{vfs.BufferSize(4096)}
		if req.Recursive {
			opts = append(opts, vfs.Recursive())
		}
		w, err := p.AddWatch(req.Path, vfs.EventOp(req.Mask), opts...)
		if err != nil {
			return fail(err)
		}
		sess.server.countRequest(opWatch, false)
		sess.watchMu.Lock()
		sess.watches[req.ID] = w
		sess.watchMu.Unlock()
		// Ack registration, then stream events under the same ID.
		if err := sess.send(rsp); err != nil {
			w.Close()
			return nil
		}
		go func(id uint64, w *vfs.Watch) {
			for ev := range w.C {
				ev := ev
				if err := sess.send(&response{ID: id, Event: &ev}); err != nil {
					w.Close()
					return
				}
			}
		}(req.ID, w)
		return nil
	case opUnwatch:
		sess.watchMu.Lock()
		w := sess.watches[req.Mask64()]
		delete(sess.watches, req.Mask64())
		sess.watchMu.Unlock()
		if w != nil {
			w.Close()
		}
		sess.server.countRequest(opUnwatch, false)
		return rsp
	default:
		rsp.Err = "dfs: unknown op"
		rsp.ErrKind = errInvalid
		sess.server.countRequest(req.Op, true)
		return rsp
	}
}

// Mask64 reads the watch-id payload of an unwatch request (carried in
// Mask to keep the request struct flat).
func (r *request) Mask64() uint64 { return uint64(r.Mask) }
