package dfs

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"

	"yanc/internal/vfs"
)

// Server exports one file system over TCP. Each accepted connection gets
// its own credential (from the client hello) and its own watch set.
type Server struct {
	fs *vfs.FS

	// replica, when set, turns this export into one member of a replica
	// group: mutating client ops are routed through the replication log
	// instead of applied directly. Assigned once at construction, before
	// Listen — never mutated afterwards.
	replica *Replica

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool

	counters serverCounters
}

// NewServer creates a server exporting fs.
func NewServer(fs *vfs.FS) *Server {
	return &Server{fs: fs, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.ListenOn(l)
}

// ListenOn starts accepting on an existing listener — the hook a fault
// harness (or any custom transport) uses to interpose on the server's
// connections. The server takes ownership of l.
func (s *Server) ListenOn(l net.Listener) (string, error) {
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the server and drops all client connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serve(c)
	}
}

// session is one client connection's state.
type session struct {
	server      *Server
	conn        net.Conn
	enc         *gob.Encoder
	encMu       sync.Mutex
	proc        *vfs.Proc
	peer        bool        // replica-to-replica session (hello.Peer)
	consistency Consistency // session default from the client hello
	watchMu     sync.Mutex
	watches     map[uint64]*vfs.Watch
}

func (s *Server) serve(c net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()
	dec := gob.NewDecoder(c)
	var h hello
	if err := dec.Decode(&h); err != nil {
		return
	}
	s.counters.sessions.Add(1)
	sess := &session{
		server:      s,
		conn:        c,
		enc:         gob.NewEncoder(c),
		proc:        s.fs.Proc(vfs.Cred{UID: h.UID, GID: h.GID, Groups: h.Groups}),
		peer:        h.Peer,
		consistency: h.Consistency,
		watches:     make(map[uint64]*vfs.Watch),
	}
	defer sess.closeWatches()
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				_ = err
			}
			return
		}
		rsp := sess.handle(&req)
		if rsp == nil {
			continue // watch registration answers asynchronously
		}
		if err := sess.send(rsp); err != nil {
			return
		}
	}
}

func (sess *session) send(rsp *response) error {
	sess.encMu.Lock()
	defer sess.encMu.Unlock()
	return sess.enc.Encode(rsp)
}

func (sess *session) closeWatches() {
	sess.watchMu.Lock()
	watches := sess.watches
	sess.watches = map[uint64]*vfs.Watch{}
	sess.watchMu.Unlock()
	for _, w := range watches {
		w.Close()
	}
}

// applyOp executes one non-watch request against p and translates the
// outcome into a wire response. It is the pure apply path shared by
// plain exports (session dispatch) and replicated ones (log apply on
// every replica). count, when non-nil, records batch sub-requests in
// the server's per-op counters; top-level ops are counted by callers.
func applyOp(p *vfs.Proc, req *request, count func(op int, failed bool)) (*response, error) {
	rsp := &response{ID: req.ID}
	var err error
	switch req.Op {
	case opMkdir:
		err = p.Mkdir(req.Path, vfs.FileMode(req.Mode))
	case opMkdirAll:
		err = p.MkdirAll(req.Path, vfs.FileMode(req.Mode))
	case opWriteFile:
		err = p.WriteFile(req.Path, req.Data, vfs.FileMode(req.Mode))
	case opAppendFile:
		err = p.AppendFile(req.Path, req.Data, vfs.FileMode(req.Mode))
	case opReadFile:
		rsp.Data, err = p.ReadFile(req.Path)
	case opRemove:
		err = p.Remove(req.Path)
	case opRemoveAll:
		err = p.RemoveAll(req.Path)
	case opRename:
		err = p.Rename(req.Path, req.Path2)
	case opSymlink:
		err = p.Symlink(req.Path2, req.Path)
	case opReadlink:
		var tgt string
		tgt, err = p.Readlink(req.Path)
		rsp.Data = []byte(tgt)
	case opLink:
		err = p.Link(req.Path, req.Path2)
	case opReadDir:
		rsp.Entries, err = p.ReadDir(req.Path)
	case opStat:
		rsp.Stat, err = p.Stat(req.Path)
	case opLstat:
		rsp.Stat, err = p.Lstat(req.Path)
	case opChmod:
		err = p.Chmod(req.Path, vfs.FileMode(req.Mode))
	case opChown:
		err = p.Chown(req.Path, req.UID, req.GID)
	case opSetXattr:
		err = p.SetXattr(req.Path, req.Path2, req.Data)
	case opGetXattr:
		rsp.Data, err = p.GetXattr(req.Path, req.Path2)
	case opListXattr:
		rsp.Names, err = p.ListXattr(req.Path)
	case opRemoveXattr:
		err = p.RemoveXattr(req.Path, req.Path2)
	case opGlob:
		rsp.Names, err = p.Glob(req.Path)
	case opNoop:
		// Log-only entry; nothing to apply.
	case opBatch:
		for i := range req.Sub {
			sub, subErr := applyOp(p, &req.Sub[i], count)
			if count != nil {
				count(req.Sub[i].Op, subErr != nil)
			}
			if subErr != nil {
				rsp.Err, rsp.ErrKind = sub.Err, sub.ErrKind
				return rsp, subErr
			}
		}
		return rsp, nil
	default:
		rsp.Err = "dfs: unknown op"
		rsp.ErrKind = errInvalid
		return rsp, vfs.ErrInvalid
	}
	if err != nil {
		rsp.Err = err.Error()
		rsp.ErrKind = errKind(err)
	}
	return rsp, err
}

// handle executes one request. It returns nil when the reply is produced
// asynchronously.
func (sess *session) handle(req *request) *response {
	s := sess.server
	if r := s.replica; r != nil {
		switch req.Op {
		case opAppendEntries:
			s.countRequest(req.Op, false)
			return r.handleAppend(req)
		case opRequestVote:
			s.countRequest(req.Op, false)
			return r.handleVote(req)
		}
		// Client mutations go through the replication log; peers never
		// send them (their sessions carry only the ops above). Reads fall
		// through to the local tree at this replica's applied index.
		if mutating(req.Op) && !sess.peer {
			rsp := r.propose(sess.consistency, req)
			s.countRequest(req.Op, rsp.Err != "")
			return rsp
		}
	}
	rsp := &response{ID: req.ID}
	fail := func(err error) *response {
		if err != nil {
			rsp.Err = err.Error()
			rsp.ErrKind = errKind(err)
		}
		sess.server.countRequest(req.Op, err != nil)
		return rsp
	}
	p := sess.proc
	switch req.Op {
	case opWatch:
		opts := []vfs.WatchOption{vfs.BufferSize(4096)}
		if req.Recursive {
			opts = append(opts, vfs.Recursive())
		}
		w, err := p.AddWatch(req.Path, vfs.EventOp(req.Mask), opts...)
		if err != nil {
			return fail(err)
		}
		sess.server.countRequest(opWatch, false)
		sess.watchMu.Lock()
		sess.watches[req.ID] = w
		sess.watchMu.Unlock()
		// Ack registration, then stream events under the same ID.
		if err := sess.send(rsp); err != nil {
			w.Close()
			return nil
		}
		go func(id uint64, w *vfs.Watch) {
			for ev := range w.C {
				ev := ev
				if err := sess.send(&response{ID: id, Event: &ev}); err != nil {
					w.Close()
					return
				}
			}
		}(req.ID, w)
		return nil
	case opUnwatch:
		sess.watchMu.Lock()
		w := sess.watches[req.Mask64()]
		delete(sess.watches, req.Mask64())
		sess.watchMu.Unlock()
		if w != nil {
			w.Close()
		}
		sess.server.countRequest(opUnwatch, false)
		return rsp
	default:
		out, err := applyOp(p, req, sess.server.countRequest)
		sess.server.countRequest(req.Op, err != nil)
		return out
	}
}

// Mask64 reads the watch-id payload of an unwatch request (carried in
// Mask to keep the request struct flat).
func (r *request) Mask64() uint64 { return uint64(r.Mask) }
