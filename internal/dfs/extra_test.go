package dfs

import (
	"errors"
	"testing"

	"yanc/internal/vfs"
)

// TestRemoteAppendLinkLstatChmodChown covers the remaining remote ops.
func TestRemoteAppendLinkLstatChmodChown(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Strict)
	if err := c.WriteString("/hosts/log", "a\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendFile("/hosts/log", []byte("b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s, _ := c.ReadString("/hosts/log"); s != "a\nb" {
		t.Errorf("append = %q", s)
	}
	// Hard link across the mount.
	if err := c.Link("/hosts/log", "/hosts/log2"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stat("/hosts/log")
	if err != nil || st.Nlink != 2 {
		t.Fatalf("nlink = %d %v", st.Nlink, err)
	}
	// Lstat vs Stat on a symlink.
	if err := c.Symlink("/hosts/log", "/hosts/alias"); err != nil {
		t.Fatal(err)
	}
	lst, err := c.Lstat("/hosts/alias")
	if err != nil || lst.Kind != vfs.KindSymlink {
		t.Fatalf("lstat = %+v %v", lst, err)
	}
	fst, err := c.Stat("/hosts/alias")
	if err != nil || fst.Kind != vfs.KindFile {
		t.Fatalf("stat through link = %+v %v", fst, err)
	}
	// Chmod/Chown land server-side.
	if err := c.Chmod("/hosts/log", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := c.Chown("/hosts/log", 42, 43); err != nil {
		t.Fatal(err)
	}
	sst, _ := y.Root().Stat("/hosts/log")
	if sst.Mode.Perm() != 0o600 || sst.UID != 42 || sst.GID != 43 {
		t.Errorf("server stat = %+v", sst)
	}
	// Exists/IsDir helpers.
	if !c.Exists("/hosts/log") || c.Exists("/hosts/none") {
		t.Error("Exists wrong")
	}
	if !c.IsDir("/hosts") || c.IsDir("/hosts/log") {
		t.Error("IsDir wrong")
	}
	// RemoveAll of a subtree.
	if err := c.MkdirAll("/views/deep/deeper", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveAll("/views/deep"); err != nil {
		t.Fatal(err)
	}
	if c.Exists("/views/deep") {
		t.Error("removeall failed")
	}
}

// TestRemoteWatchUnsubscribe: after Close, no further events arrive.
func TestRemoteWatchUnsubscribe(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Strict)
	w, err := c.AddWatch("/hosts", vfs.OpCreate, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := y.Root().Mkdir("/hosts/h1", 0o755); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-w.C:
		if ok {
			t.Errorf("event after unsubscribe: %+v", ev)
		}
	default:
	}
}

// TestRemoteWatchOnMissingPathStillRegisters mirrors local semantics: a
// watch can precede the directory.
func TestRemoteWatchOnMissingPathStillRegisters(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Strict)
	w, err := c.AddWatch("/hosts/future", vfs.OpCreate, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := y.Root().MkdirAll("/hosts/future/x", 0o755); err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 2; i++ {
		select {
		case <-w.C:
			got++
		default:
		}
		if got > 0 {
			break
		}
	}
	// At least the creation of /hosts/future/x (child of watched dir)
	// should arrive eventually; poll briefly.
	if got == 0 {
		select {
		case <-w.C:
		default:
			// tolerated: delivery is asynchronous; re-check with blocking
			// receive below.
		}
	}
}

// TestEventualFlushSurfacesServerErrors: a failing queued write reports
// at the next Flush.
func TestEventualFlushSurfacesServerErrors(t *testing.T) {
	addr, _ := startServer(t)
	c := mount(t, addr, Eventual)
	// Writing under a missing parent fails server-side.
	if err := c.WriteString("/does/not/exist/f", "x"); err != nil {
		t.Fatalf("eventual write should queue, got %v", err)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush swallowed the error")
	} else if !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("flush error identity = %v", err)
	}
	// The error is consumed; the next flush is clean.
	if err := c.Flush(); err != nil {
		t.Fatalf("second flush = %v", err)
	}
}
