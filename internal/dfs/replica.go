// Replicated control plane (§6): N dfs replicas, one holding a leader
// lease, turn the single exported file system into a fault-tolerant
// cluster. The leader appends every mutating op to a replication log
// and streams it to followers over the same gob proto the clients
// speak; followers apply committed entries to their own vfs tree, serve
// reads (and watches) at their applied index, and bounce writes back
// with a leader redirect hint.
//
// The protocol is a lease-bounded subset of Raft:
//
//   - Terms are monotone; every message carries the sender's term and a
//     higher term always wins.
//   - A follower that hears nothing for its (randomized) election
//     timeout becomes a candidate, increments the term, and asks every
//     peer for a vote. A vote is granted once per term and only to a
//     candidate whose log is at least as complete — so an elected
//     leader always holds every majority-acknowledged write.
//   - The leader's lease is its right to keep serving: it must hear
//     append acknowledgments from a majority within LeaseTimeout or it
//     steps down. A leader that can send heartbeats but not receive
//     acks (the asymmetric partition faultnet can inject) therefore
//     vacates in bounded time, letting the majority side elect.
//   - Consistency is per-path (WheelFS-style, via the same
//     user.yanc.consistency xattr clients use): a strict write is acked
//     only after a majority holds its log entry; an eventual write is
//     acked after the leader's local apply and streamed lazily.
//   - Every mutating request carries a (ClientID, Seq) identity; the
//     apply path on every replica deduplicates, so a client replaying a
//     mid-failover write onto the new leader lands it exactly once —
//     even on the deposed leader when it later rejoins and receives the
//     same op again through the new leader's log.
//
// The log lives in memory and is never compacted; replicas joining
// fresh replay it from index 1. That bounds this design to control-
// plane state (flow tables, topology, host records), which is exactly
// the workload §6 distributes.
package dfs

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/vfs"
)

// Clock abstracts the timers the replication layer runs on: lease
// expiry, election timeouts, and heartbeat pacing. Tests inject a
// virtual clock for determinism; the default reads the real one.
type Clock struct {
	Now   func() time.Time
	After func(time.Duration) <-chan time.Time
}

func (c Clock) withDefaults() Clock {
	if c.Now == nil {
		//yancvet:wallclock default clock is the real clock by definition
		c.Now = time.Now
	}
	if c.After == nil {
		//yancvet:wallclock default clock is the real clock by definition
		c.After = time.After
	}
	return c
}

// Role is a replica's position in the current term.
type Role int32

// Replica roles.
const (
	RoleFollower Role = iota
	RoleCandidate
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleCandidate:
		return "candidate"
	default:
		return "follower"
	}
}

// Replication timing defaults (overridable per replica).
const (
	DefaultHeartbeat       = 25 * time.Millisecond
	DefaultLeaseTimeout    = 250 * time.Millisecond
	DefaultElectionTimeout = 300 * time.Millisecond
	DefaultCommitTimeout   = 5 * time.Second
)

// ReplicaOptions configures one member of a replica group.
type ReplicaOptions struct {
	// ID indexes this replica in Addrs.
	ID int
	// Addrs lists every replica's advertised address, in ID order. All
	// members must agree on it.
	Addrs []string
	// Heartbeat paces leader appends; an idle leader still appends this
	// often so followers keep their election timers reset.
	Heartbeat time.Duration
	// LeaseTimeout bounds leadership without majority contact: a leader
	// that collects no majority of append acks within it steps down, and
	// peer round trips time out at this bound.
	LeaseTimeout time.Duration
	// ElectionTimeout is the base follower patience; each wait is
	// randomized in [T, 2T) to decorrelate candidates.
	ElectionTimeout time.Duration
	// CommitTimeout bounds how long a strict write waits for majority
	// acknowledgment before failing back to the client (who retries,
	// deduplicated, after failover).
	CommitTimeout time.Duration
	// Dial opens a connection to a peer address. Fault harnesses
	// interpose here; the default is plain TCP.
	Dial func(addr string) (net.Conn, error)
	// Clock supplies the timers; tests inject a virtual one.
	Clock Clock
	// Seed makes election-timeout randomization reproducible.
	Seed int64
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.Heartbeat <= 0 {
		o.Heartbeat = DefaultHeartbeat
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = DefaultLeaseTimeout
	}
	if o.ElectionTimeout <= 0 {
		o.ElectionTimeout = DefaultElectionTimeout
	}
	if o.CommitTimeout <= 0 {
		o.CommitTimeout = DefaultCommitTimeout
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, DefaultCallTimeout)
		}
	}
	o.Clock = o.Clock.withDefaults()
	return o
}

// dedupWindow bounds how many out-of-order sequence numbers per client
// the apply path remembers; anything older than maxSeq-window is
// treated as an ancient duplicate.
const dedupWindow = 4096

// dedupResult is one remembered apply outcome.
type dedupResult struct {
	rsp   response
	index uint64 // log index the op was applied at
}

// clientWindow is the per-client dedup state, replicated implicitly:
// it is rebuilt identically on every replica by applying the same log.
type clientWindow struct {
	maxSeq uint64
	seen   map[uint64]dedupResult
}

// Replica is one member of a replicated dfs export. It embeds a Server
// for the client-facing session handling; mutating client ops are
// routed through the replication log instead of applied directly.
type Replica struct {
	srv  *Server
	fs   *vfs.FS
	proc *vfs.Proc
	opts ReplicaOptions

	n, majority int

	mu       sync.Mutex
	closed   bool
	stop     chan struct{}
	role     Role
	term     uint64
	votedFor int // candidate voted for in the current term; -1 none
	leaderID int // last observed leader; -1 unknown
	log      []LogEntry
	commit   uint64
	applied  uint64
	dedup    map[uint64]*clientWindow

	electionDeadline time.Time

	votes    map[int]bool // candidate: grants received this term
	voteSent []uint64     // per peer: term of the last vote request sent

	nextIndex  []uint64    // leader: next log index to send each peer
	matchIndex []uint64    // leader: highest index known replicated on each peer
	ackTime    []time.Time // leader: last append ack per peer (lease evidence)
	lastSend   []time.Time // leader: last append sent per peer (heartbeat pacing)

	waiters map[uint64][]chan error // strict acks parked on a log index

	rng *rand.Rand
	wg  sync.WaitGroup

	counters replicaCounters
}

// NewReplica creates replica opts.ID of a group exporting fs. Call
// ListenOn/Listen to accept clients and peers, then Start to join the
// replication protocol.
func NewReplica(fs *vfs.FS, opts ReplicaOptions) (*Replica, error) {
	opts = opts.withDefaults()
	if opts.ID < 0 || opts.ID >= len(opts.Addrs) {
		return nil, fmt.Errorf("dfs: replica ID %d outside Addrs (%d members)", opts.ID, len(opts.Addrs))
	}
	n := len(opts.Addrs)
	r := &Replica{
		srv:        NewServer(fs),
		fs:         fs,
		proc:       fs.Proc(vfs.Root),
		opts:       opts,
		n:          n,
		majority:   n/2 + 1,
		stop:       make(chan struct{}),
		role:       RoleFollower,
		votedFor:   -1,
		leaderID:   -1,
		dedup:      make(map[uint64]*clientWindow),
		voteSent:   make([]uint64, n),
		nextIndex:  make([]uint64, n),
		matchIndex: make([]uint64, n),
		ackTime:    make([]time.Time, n),
		lastSend:   make([]time.Time, n),
		waiters:    make(map[uint64][]chan error),
		rng:        rand.New(rand.NewSource(opts.Seed + int64(opts.ID)*7919)),
	}
	r.srv.replica = r
	return r, nil
}

// Server returns the embedded client-facing server (for stats binding).
func (r *Replica) Server() *Server { return r.srv }

// ID returns this replica's index in the group.
func (r *Replica) ID() int { return r.opts.ID }

// Addr returns this replica's advertised address.
func (r *Replica) Addr() string { return r.opts.Addrs[r.opts.ID] }

// Listen starts accepting clients and peers on addr.
func (r *Replica) Listen(addr string) (string, error) { return r.srv.Listen(addr) }

// ListenOn starts accepting on an existing listener (the faultnet hook).
func (r *Replica) ListenOn(l net.Listener) (string, error) { return r.srv.ListenOn(l) }

// Start joins the replication protocol: the tick loop watches the
// lease/election timers and one loop per peer streams appends and vote
// requests.
func (r *Replica) Start() {
	r.mu.Lock()
	now := r.opts.Clock.Now()
	r.electionDeadline = now.Add(r.randElectionTimeout())
	r.mu.Unlock()
	r.wg.Add(1)
	go r.tickLoop()
	for j := 0; j < r.n; j++ {
		if j == r.opts.ID {
			continue
		}
		r.wg.Add(1)
		go r.peerLoop(j)
	}
}

// Close stops the replica: the server drops its sessions and the
// protocol loops drain.
func (r *Replica) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.failWaitersLocked(fmt.Errorf("%w: replica closed", ErrNotLeader))
	r.mu.Unlock()
	close(r.stop)
	r.srv.Close()
	r.wg.Wait()
}

// randElectionTimeout returns a fresh randomized follower patience in
// [ElectionTimeout, 2*ElectionTimeout). Callers hold mu (rng is not
// concurrency-safe).
func (r *Replica) randElectionTimeout() time.Duration {
	t := r.opts.ElectionTimeout
	return t + time.Duration(r.rng.Int63n(int64(t)))
}

// tickLoop drives the time-based transitions: lease expiry on the
// leader, election timeout on followers and candidates.
func (r *Replica) tickLoop() {
	defer r.wg.Done()
	tick := r.opts.Heartbeat / 2
	if tick <= 0 {
		tick = time.Millisecond
	}
	for {
		select {
		case <-r.stop:
			return
		case <-r.opts.Clock.After(tick):
		}
		r.mu.Lock()
		now := r.opts.Clock.Now()
		switch r.role {
		case RoleLeader:
			live := 1 // self
			for j := 0; j < r.n; j++ {
				if j != r.opts.ID && now.Sub(r.ackTime[j]) <= r.opts.LeaseTimeout {
					live++
				}
			}
			if live < r.majority {
				r.stepDownLocked(r.term, now)
			}
		case RoleFollower, RoleCandidate:
			if now.After(r.electionDeadline) {
				r.startElectionLocked(now)
			}
		}
		r.mu.Unlock()
	}
}

// startElectionLocked opens a new term with this replica as candidate.
func (r *Replica) startElectionLocked(now time.Time) {
	r.term++
	r.role = RoleCandidate
	r.votedFor = r.opts.ID
	r.leaderID = -1
	r.votes = make(map[int]bool)
	r.electionDeadline = now.Add(r.randElectionTimeout())
	r.counters.elections.Add(1)
	if r.majority == 1 { // single-member group: win immediately
		r.becomeLeaderLocked(now)
	}
}

// becomeLeaderLocked installs this replica as leader for the current
// term. A no-op entry is appended immediately: committing it commits
// every earlier-term entry the log carries (the Raft commit rule only
// counts current-term entries), so strict writes acked by a dead leader
// become visible on the new one without waiting for fresh client load.
func (r *Replica) becomeLeaderLocked(now time.Time) {
	r.role = RoleLeader
	r.leaderID = r.opts.ID
	for j := 0; j < r.n; j++ {
		r.nextIndex[j] = uint64(len(r.log)) + 1
		r.matchIndex[j] = 0
		r.ackTime[j] = now
		r.lastSend[j] = time.Time{} // force an immediate heartbeat
	}
	r.appendLocked(LogEntry{Req: request{Op: opNoop}})
	r.applyToLocked(uint64(len(r.log)))
	if r.n == 1 {
		r.commit = uint64(len(r.log))
	}
}

// stepDownLocked demotes to follower (adopting term if newer) and fails
// every parked strict ack so clients re-route to the next leader.
func (r *Replica) stepDownLocked(term uint64, now time.Time) {
	if term > r.term {
		r.term = term
		r.votedFor = -1
	}
	if r.role == RoleLeader {
		r.counters.stepDowns.Add(1)
	}
	r.role = RoleFollower
	r.leaderID = -1
	r.electionDeadline = now.Add(r.randElectionTimeout())
	r.failWaitersLocked(fmt.Errorf("%w: leadership lost", ErrNotLeader))
}

func (r *Replica) failWaitersLocked(err error) {
	for idx, chs := range r.waiters {
		for _, ch := range chs {
			ch <- err
		}
		delete(r.waiters, idx)
	}
}

// appendLocked stamps index/term on e and appends it.
func (r *Replica) appendLocked(e LogEntry) *LogEntry {
	e.Index = uint64(len(r.log)) + 1
	e.Term = r.term
	r.log = append(r.log, e)
	return &r.log[len(r.log)-1]
}

// lastLocked returns the log's last (index, term).
func (r *Replica) lastLocked() (uint64, uint64) {
	if len(r.log) == 0 {
		return 0, 0
	}
	e := r.log[len(r.log)-1]
	return e.Index, e.Term
}

// leaderHintLocked returns the last observed leader's address, if any.
func (r *Replica) leaderHintLocked() string {
	if r.leaderID >= 0 && r.leaderID < len(r.opts.Addrs) {
		return r.opts.Addrs[r.leaderID]
	}
	return ""
}

// ---- peer transport ------------------------------------------------

// peerConn is one synchronous request/response connection to a peer.
type peerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (r *Replica) dialPeer(j int) (*peerConn, error) {
	conn, err := r.opts.Dial(r.opts.Addrs[j])
	if err != nil {
		return nil, err
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	//yancvet:wallclock transport write deadline must be real time
	conn.SetWriteDeadline(time.Now().Add(r.opts.LeaseTimeout))
	err = pc.enc.Encode(hello{Peer: true, From: r.opts.ID})
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	return pc, nil
}

// roundTrip performs one peer RPC bounded by the lease timeout: a peer
// that cannot answer within the lease is indistinguishable from a
// partitioned one, and the lease logic must see that as silence.
func (pc *peerConn) roundTrip(req *request, timeout time.Duration) (*response, error) {
	//yancvet:wallclock transport deadlines must be real time
	pc.conn.SetDeadline(time.Now().Add(timeout))
	defer pc.conn.SetDeadline(time.Time{})
	if err := pc.enc.Encode(req); err != nil {
		return nil, err
	}
	var rsp response
	if err := pc.dec.Decode(&rsp); err != nil {
		return nil, err
	}
	return &rsp, nil
}

func (pc *peerConn) close() { pc.conn.Close() }

// peerLoop owns all traffic to one peer: append streams and heartbeats
// while leading, vote requests while campaigning. One loop per peer
// keeps the RPCs strictly ordered per destination.
func (r *Replica) peerLoop(j int) {
	defer r.wg.Done()
	var pc *peerConn
	defer func() {
		if pc != nil {
			pc.close()
		}
	}()
	bo := backoff.New(backoff.Policy{Min: r.opts.Heartbeat / 2, Max: r.opts.LeaseTimeout})
	idle := r.opts.Heartbeat / 4
	if idle <= 0 {
		idle = time.Millisecond
	}
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		req := r.nextPeerWork(j)
		if req == nil {
			select {
			case <-r.stop:
				return
			case <-r.opts.Clock.After(idle):
			}
			continue
		}
		if pc == nil {
			var err error
			if pc, err = r.dialPeer(j); err != nil {
				select {
				case <-r.stop:
					return
				case <-backoff.Wait(bo.Next()):
				}
				continue
			}
			bo.Reset()
		}
		rsp, err := pc.roundTrip(req, r.opts.LeaseTimeout)
		if err != nil {
			pc.close()
			pc = nil
			continue
		}
		r.handlePeerResponse(j, req, rsp)
	}
}

// nextPeerWork decides what (if anything) to send peer j right now.
func (r *Replica) nextPeerWork(j int) *request {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.opts.Clock.Now()
	switch r.role {
	case RoleLeader:
		backlog := uint64(len(r.log)) >= r.nextIndex[j]
		if !backlog && now.Sub(r.lastSend[j]) < r.opts.Heartbeat {
			return nil
		}
		r.lastSend[j] = now
		prev := r.nextIndex[j] - 1
		var prevTerm uint64
		if prev > 0 && prev <= uint64(len(r.log)) {
			prevTerm = r.log[prev-1].Term
		}
		entries := r.log[prev:]
		if len(entries) > 256 {
			entries = entries[:256]
		}
		return &request{
			Op: opAppendEntries, Term: r.term, From: r.opts.ID,
			PrevIndex: prev, PrevTerm: prevTerm,
			Entries: append([]LogEntry(nil), entries...),
			Commit:  r.commit,
		}
	case RoleCandidate:
		if r.voteSent[j] == r.term {
			return nil
		}
		r.voteSent[j] = r.term
		lastIdx, lastTerm := r.lastLocked()
		return &request{
			Op: opRequestVote, Term: r.term, From: r.opts.ID,
			LastIndex: lastIdx, LastTerm: lastTerm,
		}
	}
	return nil
}

// handlePeerResponse folds one peer RPC result back into the protocol
// state.
func (r *Replica) handlePeerResponse(j int, req *request, rsp *response) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.opts.Clock.Now()
	if rsp.Term > r.term {
		r.stepDownLocked(rsp.Term, now)
		return
	}
	if req.Term != r.term {
		return // stale round trip from a previous term
	}
	switch req.Op {
	case opAppendEntries:
		if r.role != RoleLeader {
			return
		}
		r.ackTime[j] = now
		if rsp.Ok {
			m := req.PrevIndex + uint64(len(req.Entries))
			if m > r.matchIndex[j] {
				r.matchIndex[j] = m
			}
			r.nextIndex[j] = r.matchIndex[j] + 1
			r.advanceCommitLocked()
		} else {
			// Log mismatch: back nextIndex off to the peer's tail and retry.
			next := rsp.MatchIndex + 1
			if next < 1 {
				next = 1
			}
			if next < r.nextIndex[j] {
				r.nextIndex[j] = next
			} else if r.nextIndex[j] > 1 {
				r.nextIndex[j]--
			}
		}
	case opRequestVote:
		if r.role != RoleCandidate || !rsp.Ok {
			return
		}
		r.votes[j] = true
		if len(r.votes)+1 >= r.majority {
			r.becomeLeaderLocked(now)
		}
	}
}

// advanceCommitLocked moves the commit index to the highest log index a
// majority holds, releases the strict acks parked below it, and (on the
// leader) has already applied everything — followers learn the new
// commit on the next append.
func (r *Replica) advanceCommitLocked() {
	for idx := uint64(len(r.log)); idx > r.commit; idx-- {
		if r.log[idx-1].Term != r.term {
			break // only current-term entries commit by counting (Raft §5.4.2)
		}
		count := 1 // self
		for j := 0; j < r.n; j++ {
			if j != r.opts.ID && r.matchIndex[j] >= idx {
				count++
			}
		}
		if count >= r.majority {
			r.commit = idx
			break
		}
	}
	for idx, chs := range r.waiters {
		if idx <= r.commit {
			for _, ch := range chs {
				ch <- nil
			}
			delete(r.waiters, idx)
		}
	}
}

// ---- inbound RPCs (called from peer sessions) ----------------------

// handleAppend is the follower half of replication: adopt the leader,
// reconcile the log, apply up to the leader's commit index.
func (r *Replica) handleAppend(req *request) *response {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.opts.Clock.Now()
	rsp := &response{ID: req.ID, Term: r.term}
	if req.Term < r.term {
		return rsp
	}
	if req.Term > r.term {
		r.term = req.Term
		r.votedFor = -1
	}
	if r.role != RoleFollower {
		if r.role == RoleLeader {
			r.counters.stepDowns.Add(1)
		}
		r.role = RoleFollower
		r.failWaitersLocked(fmt.Errorf("%w: new leader", ErrNotLeader))
	}
	r.leaderID = req.From
	r.electionDeadline = now.Add(r.randElectionTimeout())
	rsp.Term = r.term
	rsp.Leader = r.leaderHintLocked()
	if req.PrevIndex > uint64(len(r.log)) {
		rsp.MatchIndex = uint64(len(r.log))
		return rsp // gap: leader must back off
	}
	if req.PrevIndex > 0 && r.log[req.PrevIndex-1].Term != req.PrevTerm {
		// Conflicting suffix: drop it. Applied effects of dropped entries
		// stay in the tree; the dedup table absorbs their re-arrival under
		// the new leader's numbering, and anything else is eventual-mode
		// divergence repaired by later writes.
		r.truncateLocked(req.PrevIndex - 1)
		rsp.MatchIndex = uint64(len(r.log))
		return rsp
	}
	for i := range req.Entries {
		idx := req.PrevIndex + uint64(i) + 1
		if idx <= uint64(len(r.log)) {
			if r.log[idx-1].Term == req.Entries[i].Term {
				continue
			}
			r.truncateLocked(idx - 1)
		}
		r.log = append(r.log, req.Entries[i])
	}
	if c := req.Commit; c > r.commit {
		if max := uint64(len(r.log)); c > max {
			c = max
		}
		r.commit = c
		r.applyToLocked(c)
	}
	rsp.Ok = true
	rsp.MatchIndex = req.PrevIndex + uint64(len(req.Entries))
	return rsp
}

func (r *Replica) truncateLocked(to uint64) {
	r.log = r.log[:to]
	if r.applied > to {
		r.applied = to
	}
}

// handleVote grants at most one vote per term, and only to candidates
// whose log is at least as complete as ours — the invariant that makes
// an elected leader hold every majority-acked write.
func (r *Replica) handleVote(req *request) *response {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.opts.Clock.Now()
	rsp := &response{ID: req.ID, Term: r.term}
	if req.Term < r.term {
		return rsp
	}
	if req.Term > r.term {
		if r.role == RoleLeader {
			r.counters.stepDowns.Add(1)
		}
		r.term = req.Term
		r.votedFor = -1
		r.role = RoleFollower
		r.leaderID = -1
		r.failWaitersLocked(fmt.Errorf("%w: election in progress", ErrNotLeader))
	}
	rsp.Term = r.term
	lastIdx, lastTerm := r.lastLocked()
	upToDate := req.LastTerm > lastTerm || (req.LastTerm == lastTerm && req.LastIndex >= lastIdx)
	if (r.votedFor == -1 || r.votedFor == req.From) && upToDate {
		r.votedFor = req.From
		r.electionDeadline = now.Add(r.randElectionTimeout())
		rsp.Ok = true
	}
	return rsp
}

// ---- proposal & apply ----------------------------------------------

// propose routes one mutating client op through the replication log.
// Strict ops return only after a majority holds the entry; eventual
// ops return after the leader's local apply.
func (r *Replica) propose(def Consistency, req *request) *response {
	strict := r.resolveMode(req, def) == Strict
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return &response{ID: req.ID, Err: "replica closed", ErrKind: errConn}
	}
	if r.role != RoleLeader {
		rsp := &response{ID: req.ID, Err: "not the leader", ErrKind: errNotLeader, Leader: r.leaderHintLocked()}
		r.mu.Unlock()
		return rsp
	}
	// Replay fast path: the op already went through the log (a client
	// retrying across a failover or a transient timeout).
	var rsp *response
	var index uint64
	if req.Op != opBatch && req.Seq != 0 {
		if res, ok := r.dedupGetLocked(req.ClientID, req.Seq); ok {
			r.counters.dedupSkips.Add(1)
			cached := res.rsp
			cached.ID = req.ID
			rsp, index = &cached, res.index
		}
	}
	if rsp == nil {
		e := r.appendLocked(LogEntry{ClientID: req.ClientID, Seq: req.Seq, Req: *req})
		index = e.Index
		rsp = r.applyEntryLocked(e)
		if r.n == 1 {
			r.commit = uint64(len(r.log))
		}
	}
	if !strict || index <= r.commit {
		r.mu.Unlock()
		return rsp
	}
	ch := make(chan error, 1)
	r.waiters[index] = append(r.waiters[index], ch)
	r.mu.Unlock()
	select {
	case err := <-ch:
		if err != nil {
			return &response{ID: req.ID, Err: err.Error(), ErrKind: errKind(err), Leader: r.leaderHint()}
		}
		return rsp
	case <-r.opts.Clock.After(r.opts.CommitTimeout):
		return &response{ID: req.ID, Err: "replication stalled: no majority acknowledgment", ErrKind: errConn}
	case <-r.stop:
		return &response{ID: req.ID, Err: "replica closed", ErrKind: errConn}
	}
}

func (r *Replica) leaderHint() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaderHintLocked()
}

// applyToLocked applies log entries up to index upto, in order.
func (r *Replica) applyToLocked(upto uint64) {
	for r.applied < upto {
		e := &r.log[r.applied]
		r.applyEntryLocked(e)
	}
}

// applyEntryLocked applies one log entry to the local tree, skipping
// (ClientID, Seq) pairs the dedup window has already seen — the
// exactly-once mechanism for client replays and for a deposed leader
// receiving its own writes back under the new leader's numbering.
func (r *Replica) applyEntryLocked(e *LogEntry) *response {
	var rsp *response
	switch {
	case e.Req.Op == opNoop:
		rsp = &response{ID: e.Req.ID}
	case e.Req.Op == opBatch:
		rsp = &response{ID: e.Req.ID}
		for i := range e.Req.Sub {
			sub := &e.Req.Sub[i]
			if sub.Seq != 0 {
				if _, ok := r.dedupGetLocked(sub.ClientID, sub.Seq); ok {
					r.counters.dedupSkips.Add(1)
					continue
				}
			}
			srsp, err := applyOp(r.proc, sub, nil)
			if sub.Seq != 0 {
				r.dedupPutLocked(sub.ClientID, sub.Seq, srsp, e.Index)
			}
			if err != nil {
				rsp.Err, rsp.ErrKind = srsp.Err, srsp.ErrKind
				break
			}
		}
	default:
		if e.Seq != 0 {
			if res, ok := r.dedupGetLocked(e.ClientID, e.Seq); ok {
				r.counters.dedupSkips.Add(1)
				cached := res.rsp
				cached.ID = e.Req.ID
				rsp = &cached
			}
		}
		if rsp == nil {
			rsp, _ = applyOp(r.proc, &e.Req, nil) //yancvet:allow errdrop op failure travels to the client in rsp.Err
			if e.Seq != 0 {
				r.dedupPutLocked(e.ClientID, e.Seq, rsp, e.Index)
			}
		}
	}
	if e.Index > r.applied {
		r.applied = e.Index
	}
	return rsp
}

// dedupGetLocked reports whether (client, seq) was already applied.
func (r *Replica) dedupGetLocked(client, seq uint64) (dedupResult, bool) {
	w := r.dedup[client]
	if w == nil {
		return dedupResult{}, false
	}
	if res, ok := w.seen[seq]; ok {
		return res, true
	}
	if seq+dedupWindow < w.maxSeq {
		// Ancient replay, already pruned: report it as an applied success.
		return dedupResult{rsp: response{}, index: r.applied}, true
	}
	return dedupResult{}, false
}

func (r *Replica) dedupPutLocked(client, seq uint64, rsp *response, index uint64) {
	w := r.dedup[client]
	if w == nil {
		w = &clientWindow{seen: make(map[uint64]dedupResult)}
		r.dedup[client] = w
	}
	stored := *rsp
	stored.Event = nil
	w.seen[seq] = dedupResult{rsp: stored, index: index}
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	if len(w.seen) > 2*dedupWindow {
		for s := range w.seen {
			if s+dedupWindow < w.maxSeq {
				delete(w.seen, s)
			}
		}
	}
}

// resolveMode resolves the consistency governing one request's path:
// the deepest user.yanc.consistency xattr on the path or an ancestor
// wins, else the session default. A batch is strict if any sub-op is.
func (r *Replica) resolveMode(req *request, def Consistency) Consistency {
	if req.Op == opBatch {
		for i := range req.Sub {
			if r.resolveMode(&req.Sub[i], def) == Strict {
				return Strict
			}
		}
		return def
	}
	p := vfs.Clean(req.Path)
	for {
		if v, err := r.proc.GetXattr(p, ConsistencyXattr); err == nil {
			if m, perr := ParseConsistency(string(v)); perr == nil {
				return m
			}
		}
		if p == "/" || p == "." || p == "" {
			break
		}
		p = path.Dir(p)
	}
	return def
}

// ---- stats ----------------------------------------------------------

// ReplicaStats is a snapshot of one replica's protocol state, the
// source for /.proc/dfs/replication.
type ReplicaStats struct {
	ID         int
	Role       string
	Term       uint64
	LogLen     uint64
	Commit     uint64
	Applied    uint64
	Lag        uint64 // log entries not yet applied locally
	LeaderID   int    // -1 when unknown
	Elections  uint64 // candidacies started
	StepDowns  uint64 // leaderships vacated (lease expiry or higher term)
	DedupSkips uint64 // replayed writes absorbed by the dedup window
}

type replicaCounters struct {
	elections, stepDowns, dedupSkips atomic.Uint64
}

// Stats snapshots the replica.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStats{
		ID:         r.opts.ID,
		Role:       r.role.String(),
		Term:       r.term,
		LogLen:     uint64(len(r.log)),
		Commit:     r.commit,
		Applied:    r.applied,
		Lag:        uint64(len(r.log)) - r.applied,
		LeaderID:   r.leaderID,
		Elections:  r.counters.elections.Load(),
		StepDowns:  r.counters.stepDowns.Load(),
		DedupSkips: r.counters.dedupSkips.Load(),
	}
}

// IsLeader reports whether the replica currently believes it leads.
func (r *Replica) IsLeader() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role == RoleLeader
}
