package dfs

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"yanc/internal/faultnet"
	"yanc/internal/vfs"
)

// testTiming is the fast protocol timing every replica test runs on.
func testTiming(o *ReplicaOptions) {
	o.Heartbeat = 5 * time.Millisecond
	o.LeaseTimeout = 60 * time.Millisecond
	o.ElectionTimeout = 80 * time.Millisecond
	o.CommitTimeout = 3 * time.Second
}

// testCluster is an in-process replica group. Every replica's transport
// — its listener and its outbound peer dials — runs through its own
// faultnet injector, so a test can isolate exactly one member.
type testCluster struct {
	t     *testing.T
	addrs []string
	fss   []*vfs.FS
	reps  []*Replica
	injs  []*faultnet.Injector
}

func newCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		tc.addrs = append(tc.addrs, l.Addr().String())
	}
	for i := 0; i < n; i++ {
		inj := faultnet.New(int64(1000 + i))
		fs := vfs.New()
		opts := ReplicaOptions{
			ID:    i,
			Addrs: tc.addrs,
			Seed:  int64(i + 1),
			Dial: func(addr string) (net.Conn, error) {
				c, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					return nil, err
				}
				return inj.Wrap(c), nil
			},
		}
		testTiming(&opts)
		r, err := NewReplica(fs, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.ListenOn(inj.WrapListener(listeners[i])); err != nil {
			t.Fatal(err)
		}
		r.Start()
		tc.fss = append(tc.fss, fs)
		tc.reps = append(tc.reps, r)
		tc.injs = append(tc.injs, inj)
	}
	t.Cleanup(func() {
		for _, r := range tc.reps {
			r.Close()
		}
	})
	return tc
}

// waitLeader blocks until some replica outside excluded claims
// leadership and returns its ID.
func (tc *testCluster) waitLeader(excluded ...int) int {
	tc.t.Helper()
	skip := make(map[int]bool)
	for _, id := range excluded {
		skip[id] = true
	}
	var id int
	eventually(tc.t, "leader election", func() bool {
		for i, r := range tc.reps {
			if !skip[i] && r.IsLeader() {
				id = i
				return true
			}
		}
		return false
	})
	return id
}

// readOn reads path on replica i's local tree (bypassing the wire).
func (tc *testCluster) readOn(i int, path string) (string, bool) {
	b, err := tc.fss[i].Proc(vfs.Root).ReadFile(path)
	return string(b), err == nil
}

func TestReplicaElectionAndStrictReplication(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()

	c, err := MountOptions(tc.addrs[lead], vfs.Root, Strict, fastOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.MkdirAll("/flows", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/flows/f1", "match=*, action=drop"); err != nil {
		t.Fatal(err)
	}
	// A strict write was majority-acked; every replica converges on it.
	for i := range tc.reps {
		i := i
		eventually(t, fmt.Sprintf("replica %d converged", i), func() bool {
			got, ok := tc.readOn(i, "/flows/f1")
			return ok && strings.Contains(got, "drop")
		})
	}
	st := tc.reps[lead].Stats()
	if st.Role != "leader" || st.Commit == 0 || st.Applied < st.Commit {
		t.Fatalf("leader stats inconsistent: %+v", st)
	}
}

func TestReplicaFollowerRejectsWritesWithRedirect(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()
	follower := (lead + 1) % 3

	c, err := MountOptions(tc.addrs[follower], vfs.Root, Strict, fastOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Mkdir("/nope", 0o755)
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("write on follower = %v, want ErrNotLeader", err)
	}
	// Reads are served locally at the follower's applied index.
	if _, err := c.ReadDir("/"); err != nil {
		t.Fatalf("read on follower: %v", err)
	}
}

func TestReplicaDedupAppliesExactlyOnce(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()
	r := tc.reps[lead]

	req := &request{Op: opAppendFile, Path: "/log", Data: []byte("x"), Mode: 0o644, ClientID: 42, Seq: 7}
	if rsp := r.propose(Strict, req); rsp.Err != "" {
		t.Fatalf("first propose: %s", rsp.Err)
	}
	// The replayed op (same ClientID/Seq, as a failover client would
	// resend it) must not append twice.
	replay := *req
	if rsp := r.propose(Strict, &replay); rsp.Err != "" {
		t.Fatalf("replay propose: %s", rsp.Err)
	}
	if got, _ := tc.readOn(lead, "/log"); got != "x" {
		t.Fatalf("log = %q, want exactly one apply", got)
	}
	if skips := r.Stats().DedupSkips; skips == 0 {
		t.Fatal("dedup skip not counted")
	}
}

func TestReplicaConsistencyXattrOverridesSessionDefault(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()
	r := tc.reps[lead]

	p := tc.fss[lead].Proc(vfs.Root)
	if err := p.MkdirAll("/counters", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.SetXattr("/counters", ConsistencyXattr, []byte("eventual")); err != nil {
		t.Fatal(err)
	}
	if got := r.resolveMode(&request{Op: opWriteFile, Path: "/counters/pkts"}, Strict); got != Eventual {
		t.Fatalf("override under /counters = %v, want Eventual", got)
	}
	if got := r.resolveMode(&request{Op: opWriteFile, Path: "/flows/f1"}, Strict); got != Strict {
		t.Fatalf("default path = %v, want Strict", got)
	}
}

func TestReplicaStrictUnavailableWithoutMajority(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()
	// Kill both followers: no majority can ever ack again.
	for i := range tc.reps {
		if i != lead {
			tc.reps[i].Close()
		}
	}
	// Allow the lease to lapse so the leader has stepped down (or, if we
	// race the lapse, the strict propose fails on the commit wait).
	time.Sleep(100 * time.Millisecond)
	rsp := tc.reps[lead].propose(Strict, &request{Op: opMkdir, Path: "/d", Mode: 0o755, ClientID: 1, Seq: 1})
	if rsp.Err == "" {
		t.Fatal("strict write succeeded without a majority")
	}
}

// TestChaosReplicaFailoverExactlyOnce drives a failover mount through a
// leader kill mid write stream: every acknowledged strict write must
// appear exactly once on the surviving replicas.
func TestChaosReplicaFailoverExactlyOnce(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()

	opts := fastOpts(true)
	opts.FailoverMaxElapsed = 20 * time.Second
	c, err := MountReplicas(tc.addrs, vfs.Root, Strict, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.MkdirAll("/flows", 0o755); err != nil {
		t.Fatal(err)
	}

	var acked []string
	for i := 0; i < 20; i++ {
		if i == 8 {
			tc.reps[lead].Close() // leader dies mid-stream
		}
		line := fmt.Sprintf("entry-%d\n", i)
		if err := c.AppendFile("/flows/log", []byte(line), 0o644); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked = append(acked, fmt.Sprintf("entry-%d", i))
	}

	newLead := tc.waitLeader(lead)
	eventually(t, "survivors converged", func() bool {
		got, ok := tc.readOn(newLead, "/flows/log")
		if !ok {
			return false
		}
		for _, want := range acked {
			if strings.Count(got, want+"\n") != 1 {
				return false
			}
		}
		return true
	})
	if c.Stats().Failovers == 0 {
		t.Fatal("failover not counted")
	}
}

// TestChaosAsymmetricPartitionDethronesLeader models the one-way fault
// the lease exists for: the leader can still send heartbeats (so no
// follower times out) but hears no acks back. Only the lease can
// dethrone it — and must, within bounded time, so the majority side
// elects a successor.
func TestChaosAsymmetricPartitionDethronesLeader(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()

	tc.injs[lead].PartitionDir(faultnet.Inbound)
	newLead := tc.waitLeader(lead)
	if newLead == lead {
		t.Fatal("leader did not change")
	}
	eventually(t, "old leader stepped down", func() bool {
		return !tc.reps[lead].IsLeader()
	})
	if tc.reps[lead].Stats().StepDowns == 0 {
		t.Fatal("lease step-down not counted")
	}

	// After healing, the deposed leader rejoins as a follower and
	// converges on the new leader's log.
	tc.injs[lead].Heal()
	c, err := MountOptions(tc.addrs[newLead], vfs.Root, Strict, fastOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteString("/after-heal", "ok"); err != nil {
		t.Fatal(err)
	}
	eventually(t, "deposed leader converged", func() bool {
		got, ok := tc.readOn(lead, "/after-heal")
		return ok && got == "ok"
	})
}

// TestChaosWatchReplayAcrossFailover kills the leader while a failover
// mount holds a recursive watch and a writer keeps pushing. The watch
// must survive onto the new leader: post-failover writes surface as
// events (a synthetic Overflow marking the gap is allowed), and the
// dead leader must not leak goroutines into the mount.
func TestChaosWatchReplayAcrossFailover(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()

	opts := fastOpts(true)
	opts.FailoverMaxElapsed = 20 * time.Second
	c, err := MountReplicas(tc.addrs, vfs.Root, Strict, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MkdirAll("/flows", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := c.AddWatch("/flows", vfs.OpAll, true)
	if err != nil {
		t.Fatal(err)
	}

	var evMu sync.Mutex
	seen := make(map[string]bool)
	overflow := false
	saw := func(path string) bool {
		evMu.Lock()
		defer evMu.Unlock()
		return seen[path]
	}
	sawOverflow := func() bool {
		evMu.Lock()
		defer evMu.Unlock()
		return overflow
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range w.C {
			evMu.Lock()
			if ev.Op == vfs.OpOverflow {
				overflow = true
			} else {
				seen[ev.Path] = true
			}
			evMu.Unlock()
		}
	}()

	base := runtime.NumGoroutine()
	if err := c.WriteString("/flows/before", "1"); err != nil {
		t.Fatal(err)
	}
	tc.reps[lead].Close()
	tc.waitLeader(lead)
	if err := c.WriteString("/flows/after", "2"); err != nil {
		t.Fatal(err)
	}

	eventually(t, "post-failover event delivery", func() bool {
		// The event for /flows/after must arrive via the replayed watch;
		// pre-failover events may be summarized by the Overflow marker.
		return saw("/flows/after") && (saw("/flows/before") || sawOverflow())
	})
	w.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watch channel never closed")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	eventually(t, "goroutines drained", func() bool {
		return runtime.NumGoroutine() <= base+3
	})
}

// TestStressReplicaConcurrentStrictWriters hammers the leader with
// concurrent strict writers and checks the replicated log applies every
// write on every replica.
func TestStressReplicaConcurrentStrictWriters(t *testing.T) {
	tc := newCluster(t, 3)
	lead := tc.waitLeader()

	c, err := MountReplicas(tc.addrs, vfs.Root, Strict, fastOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.MkdirAll("/w", 0o755); err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 10
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				if err := c.WriteString(fmt.Sprintf("/w/f-%d-%d", g, i), "v"); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < writers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := range tc.reps {
		i := i
		eventually(t, fmt.Sprintf("replica %d has all writes", i), func() bool {
			entries, err := tc.fss[i].Proc(vfs.Root).ReadDir("/w")
			return err == nil && len(entries) == writers*per
		})
	}
	_ = lead
}
