package dfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"yanc/internal/vfs"
)

// ErrClosed reports use of a closed mount.
var ErrClosed = errors.New("dfs: mount closed")

// Client is a remote mount of an exported file system. Its method set
// mirrors vfs.Proc, so code written against the local file system works
// against the mount — the property §6 relies on to distribute yanc
// applications across machines.
type Client struct {
	consistency Consistency

	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	nextID  uint64
	pending map[uint64]chan *response
	watches map[uint64]*RemoteWatch
	closed  bool

	// Eventual-consistency write pipeline.
	queueMu   sync.Mutex
	queue     []request
	queueCond *sync.Cond
	flushing  bool
	flushErr  error
	stopFlush chan struct{}
	flushDone chan struct{}

	// Per-subtree consistency overrides (path prefix -> mode).
	overrideMu sync.RWMutex
	overrides  map[string]Consistency
}

// Mount connects to a server with the given credential and default
// consistency mode.
func Mount(addr string, cred vfs.Cred, consistency Consistency) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dfs: mount %s: %w", addr, err)
	}
	c := &Client{
		consistency: consistency,
		conn:        conn,
		enc:         gob.NewEncoder(conn),
		pending:     make(map[uint64]chan *response),
		watches:     make(map[uint64]*RemoteWatch),
		overrides:   make(map[string]Consistency),
		stopFlush:   make(chan struct{}),
		flushDone:   make(chan struct{}),
	}
	c.queueCond = sync.NewCond(&c.queueMu)
	if err := c.enc.Encode(hello{UID: cred.UID, GID: cred.GID, Groups: cred.Groups, Consistency: consistency}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	go c.flushLoop()
	return c, nil
}

// Close flushes pending writes and tears the mount down.
func (c *Client) Close() error {
	_ = c.Flush()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.stopFlush)
	conn := c.conn
	c.mu.Unlock()
	c.queueCond.Broadcast()
	<-c.flushDone
	return conn.Close()
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var rsp response
		if err := dec.Decode(&rsp); err != nil {
			c.failAll(err)
			return
		}
		if rsp.Event != nil {
			c.mu.Lock()
			w := c.watches[rsp.ID]
			c.mu.Unlock()
			if w != nil {
				w.deliver(*rsp.Event)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[rsp.ID]
		delete(c.pending, rsp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &rsp
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	pending := c.pending
	c.pending = make(map[uint64]chan *response)
	watches := c.watches
	c.watches = make(map[uint64]*RemoteWatch)
	c.closed = true
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- &response{Err: "connection lost: " + err.Error(), ErrKind: errOther}
	}
	for _, w := range watches {
		w.close()
	}
	c.queueCond.Broadcast()
}

// call performs one synchronous round trip.
func (c *Client) call(req request) (*response, error) {
	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	err := c.enc.Encode(&req)
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	rsp := <-ch
	if err := wireError(rsp); err != nil {
		return rsp, err
	}
	return rsp, nil
}

// SetConsistency records a subtree override and persists it as the
// subtree's xattr so other mounts can observe the requirement.
func (c *Client) SetConsistency(path string, mode Consistency) error {
	path = vfs.Clean(path)
	if err := c.SetXattr(path, ConsistencyXattr, []byte(mode.String())); err != nil {
		return err
	}
	c.overrideMu.Lock()
	c.overrides[path] = mode
	c.overrideMu.Unlock()
	return nil
}

// modeFor resolves the consistency governing a path: the deepest subtree
// override wins, else the mount default.
func (c *Client) modeFor(path string) Consistency {
	c.overrideMu.RLock()
	defer c.overrideMu.RUnlock()
	if len(c.overrides) == 0 {
		return c.consistency
	}
	path = vfs.Clean(path)
	var prefixes []string
	for p := range c.overrides {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return len(prefixes[i]) > len(prefixes[j]) })
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") || p == "/" {
			return c.overrides[p]
		}
	}
	return c.consistency
}

// write routes a mutating request per the governing consistency mode.
func (c *Client) write(path string, req request) error {
	if c.modeFor(path) == Strict {
		_, err := c.call(req)
		return err
	}
	c.queueMu.Lock()
	if c.closed {
		c.queueMu.Unlock()
		return ErrClosed
	}
	c.queue = append(c.queue, req)
	c.queueMu.Unlock()
	c.queueCond.Signal()
	return nil
}

// flushLoop drains the eventual-consistency queue in order, batching
// whatever has accumulated into one round trip.
func (c *Client) flushLoop() {
	defer close(c.flushDone)
	for {
		c.queueMu.Lock()
		for len(c.queue) == 0 {
			select {
			case <-c.stopFlush:
				c.queueMu.Unlock()
				return
			default:
			}
			if c.isClosed() {
				c.queueMu.Unlock()
				return
			}
			c.queueCond.Wait()
		}
		batch := c.queue
		c.queue = nil
		c.flushing = true
		c.queueMu.Unlock()

		_, err := c.call(request{Op: opBatch, Sub: batch})

		c.queueMu.Lock()
		c.flushing = false
		if err != nil && c.flushErr == nil {
			c.flushErr = err
		}
		c.queueMu.Unlock()
		c.queueCond.Broadcast()
	}
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Flush blocks until every queued eventual write has been applied on the
// server, returning the first flush error since the previous Flush. This
// is the barrier an application uses before reading back its own
// eventual-mode writes.
func (c *Client) Flush() error {
	c.queueMu.Lock()
	defer c.queueMu.Unlock()
	for (len(c.queue) > 0 || c.flushing) && !c.isClosedLocked() {
		c.queueCond.Wait()
	}
	err := c.flushErr
	c.flushErr = nil
	return err
}

func (c *Client) isClosedLocked() bool {
	// Called with queueMu held; peek at closed without blocking on mu.
	select {
	case <-c.stopFlush:
		return true
	default:
		return false
	}
}

// Mkdir creates a directory on the server.
func (c *Client) Mkdir(path string, mode vfs.FileMode) error {
	return c.write(path, request{Op: opMkdir, Path: path, Mode: uint16(mode)})
}

// MkdirAll creates path and missing parents.
func (c *Client) MkdirAll(path string, mode vfs.FileMode) error {
	return c.write(path, request{Op: opMkdirAll, Path: path, Mode: uint16(mode)})
}

// WriteFile creates or replaces a file.
func (c *Client) WriteFile(path string, data []byte, mode vfs.FileMode) error {
	return c.write(path, request{Op: opWriteFile, Path: path, Data: append([]byte(nil), data...), Mode: uint16(mode)})
}

// WriteString writes a string file.
func (c *Client) WriteString(path, s string) error {
	return c.WriteFile(path, []byte(s), 0o644)
}

// AppendFile appends to a file.
func (c *Client) AppendFile(path string, data []byte, mode vfs.FileMode) error {
	return c.write(path, request{Op: opAppendFile, Path: path, Data: append([]byte(nil), data...), Mode: uint16(mode)})
}

// ReadFile reads a whole file.
func (c *Client) ReadFile(path string) ([]byte, error) {
	rsp, err := c.call(request{Op: opReadFile, Path: path})
	if err != nil {
		return nil, err
	}
	return rsp.Data, nil
}

// ReadString reads a whitespace-trimmed string file.
func (c *Client) ReadString(path string) (string, error) {
	b, err := c.ReadFile(path)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// Remove unlinks a file or empty (or semantically recursive) directory.
func (c *Client) Remove(path string) error {
	return c.write(path, request{Op: opRemove, Path: path})
}

// RemoveAll removes a subtree.
func (c *Client) RemoveAll(path string) error {
	return c.write(path, request{Op: opRemoveAll, Path: path})
}

// Rename moves a file or directory.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.write(oldPath, request{Op: opRename, Path: oldPath, Path2: newPath})
}

// Symlink creates a symbolic link.
func (c *Client) Symlink(target, linkPath string) error {
	return c.write(linkPath, request{Op: opSymlink, Path: linkPath, Path2: target})
}

// Readlink reads a symlink target.
func (c *Client) Readlink(path string) (string, error) {
	rsp, err := c.call(request{Op: opReadlink, Path: path})
	if err != nil {
		return "", err
	}
	return string(rsp.Data), nil
}

// Link creates a hard link.
func (c *Client) Link(oldPath, newPath string) error {
	return c.write(newPath, request{Op: opLink, Path: oldPath, Path2: newPath})
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	rsp, err := c.call(request{Op: opReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return rsp.Entries, nil
}

// Stat stats a path, following symlinks.
func (c *Client) Stat(path string) (vfs.Stat, error) {
	rsp, err := c.call(request{Op: opStat, Path: path})
	if err != nil {
		return vfs.Stat{}, err
	}
	return rsp.Stat, nil
}

// Lstat stats a path without following a final symlink.
func (c *Client) Lstat(path string) (vfs.Stat, error) {
	rsp, err := c.call(request{Op: opLstat, Path: path})
	if err != nil {
		return vfs.Stat{}, err
	}
	return rsp.Stat, nil
}

// Exists reports whether path resolves.
func (c *Client) Exists(path string) bool {
	_, err := c.Stat(path)
	return err == nil
}

// IsDir reports whether path is a directory.
func (c *Client) IsDir(path string) bool {
	st, err := c.Stat(path)
	return err == nil && st.IsDir()
}

// Chmod changes permissions.
func (c *Client) Chmod(path string, mode vfs.FileMode) error {
	return c.write(path, request{Op: opChmod, Path: path, Mode: uint16(mode)})
}

// Chown changes ownership.
func (c *Client) Chown(path string, uid, gid int) error {
	return c.write(path, request{Op: opChown, Path: path, UID: uid, GID: gid})
}

// SetXattr sets an extended attribute (always strict: metadata like
// consistency requirements must not lag).
func (c *Client) SetXattr(path, attr string, value []byte) error {
	_, err := c.call(request{Op: opSetXattr, Path: path, Path2: attr, Data: value})
	return err
}

// GetXattr reads an extended attribute.
func (c *Client) GetXattr(path, attr string) ([]byte, error) {
	rsp, err := c.call(request{Op: opGetXattr, Path: path, Path2: attr})
	if err != nil {
		return nil, err
	}
	return rsp.Data, nil
}

// ListXattr lists attribute names.
func (c *Client) ListXattr(path string) ([]string, error) {
	rsp, err := c.call(request{Op: opListXattr, Path: path})
	if err != nil {
		return nil, err
	}
	return rsp.Names, nil
}

// RemoveXattr removes an attribute.
func (c *Client) RemoveXattr(path, attr string) error {
	_, err := c.call(request{Op: opRemoveXattr, Path: path, Path2: attr})
	return err
}

// Glob matches a wildcard pattern server-side.
func (c *Client) Glob(pattern string) ([]string, error) {
	rsp, err := c.call(request{Op: opGlob, Path: pattern})
	if err != nil {
		return nil, err
	}
	return rsp.Names, nil
}

// RemoteWatch is a watch on the exported file system; events stream over
// the mount connection.
type RemoteWatch struct {
	C  <-chan vfs.Event
	ch chan vfs.Event

	client *Client
	id     uint64
	mu     sync.Mutex
	closed bool
}

// AddWatch subscribes to events under path on the server.
func (c *Client) AddWatch(path string, mask vfs.EventOp, recursive bool) (*RemoteWatch, error) {
	w := &RemoteWatch{client: c, ch: make(chan vfs.Event, 4096)}
	w.C = w.ch
	// Register the watch entry before the call so no event can race past.
	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := c.nextID
	w.id = id
	c.pending[id] = ch
	c.watches[id] = w
	err := c.enc.Encode(&request{ID: id, Op: opWatch, Path: path, Mask: uint32(mask), Recursive: recursive})
	c.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		delete(c.watches, id)
		c.mu.Unlock()
		return nil, err
	}
	rsp := <-ch
	if err := wireError(rsp); err != nil {
		c.mu.Lock()
		delete(c.watches, id)
		c.mu.Unlock()
		return nil, err
	}
	return w, nil
}

func (w *RemoteWatch) deliver(ev vfs.Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	select {
	case w.ch <- ev:
	default: // drop like inotify on overflow
	}
}

func (w *RemoteWatch) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
}

// Close unsubscribes.
func (w *RemoteWatch) Close() {
	c := w.client
	c.mu.Lock()
	delete(c.watches, w.id)
	c.mu.Unlock()
	_, _ = c.call(request{Op: opUnwatch, Mask: uint32(w.id)})
	w.close()
}
