package dfs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/vfs"
)

// ErrClosed reports use of a closed mount.
var ErrClosed = errors.New("dfs: mount closed")

// ErrDisconnected reports an operation attempted (or orphaned) while the
// mount's connection to the server is down. With Options.Reconnect the
// condition is transient: the mount keeps redialing in the background.
var ErrDisconnected = errors.New("dfs: connection lost")

// ErrTimeout reports a strict RPC that exceeded Options.CallTimeout; the
// connection is torn down, since a server that stopped answering is
// indistinguishable from a dead one.
var ErrTimeout = errors.New("dfs: call timed out")

// ErrQueueFull reports that the bounded eventual-consistency write queue
// is at capacity (typically during a long disconnection).
var ErrQueueFull = errors.New("dfs: eventual write queue full")

// ErrNotLeader reports a mutating op sent to a replica that is not the
// current leader. A failover mount (MountReplicas) absorbs it by
// re-homing to the leader and replaying; it surfaces to callers only
// when no leader could be reached within the failover budget.
var ErrNotLeader = errors.New("dfs: not the leader")

// Resilience defaults (overridable per mount through Options).
const (
	DefaultCallTimeout        = 10 * time.Second
	DefaultMaxQueue           = 4096
	DefaultRetryMin           = 50 * time.Millisecond
	DefaultRetryMax           = 5 * time.Second
	DefaultFailoverMaxElapsed = 30 * time.Second
)

// Options tunes a mount's failure behaviour.
type Options struct {
	// CallTimeout bounds every synchronous RPC (and the reconnect dial).
	// 0 means DefaultCallTimeout; negative disables the deadline.
	CallTimeout time.Duration
	// Reconnect makes the mount survive connection loss: it redials with
	// capped exponential backoff, replays the hello and the per-subtree
	// consistency overrides, re-registers watches (delivering a synthetic
	// Overflow event so subscribers know to rescan), and flushes writes
	// queued during the outage.
	Reconnect bool
	// RetryMin/RetryMax bound the reconnect and flush-retry backoff
	// (defaults DefaultRetryMin/DefaultRetryMax).
	RetryMin time.Duration
	RetryMax time.Duration
	// MaxQueue bounds the eventual-consistency write queue; writes beyond
	// it fail with ErrQueueFull. 0 means DefaultMaxQueue.
	MaxQueue int
	// FailoverMaxElapsed caps the total jittered time a failover mount
	// (MountReplicas) spends retrying one strict operation across leader
	// redirects and remounts before surfacing the error. 0 means
	// DefaultFailoverMaxElapsed; negative disables the cap.
	FailoverMaxElapsed time.Duration
}

func (o Options) withDefaults() Options {
	if o.CallTimeout == 0 {
		o.CallTimeout = DefaultCallTimeout
	}
	if o.RetryMin <= 0 {
		o.RetryMin = DefaultRetryMin
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = DefaultMaxQueue
	}
	if o.FailoverMaxElapsed == 0 {
		o.FailoverMaxElapsed = DefaultFailoverMaxElapsed
	}
	return o
}

func (o Options) retryPolicy() backoff.Policy {
	return backoff.Policy{Min: o.RetryMin, Max: o.RetryMax}
}

// failoverPolicy is retryPolicy bounded by the failover budget.
func (o Options) failoverPolicy() backoff.Policy {
	p := o.retryPolicy()
	if o.FailoverMaxElapsed > 0 {
		p.MaxElapsed = o.FailoverMaxElapsed
	}
	return p
}

// Connection lifecycle states.
const (
	stateUp int32 = iota
	stateDown
	stateClosed
)

// Client is a remote mount of an exported file system. Its method set
// mirrors vfs.Proc, so code written against the local file system works
// against the mount — the property §6 relies on to distribute yanc
// applications across machines.
type Client struct {
	addr        string   // current address (under mu once mounted)
	addrs       []string // every known replica address; len 1 for plain mounts
	addrIdx     int      // index of addr in addrs (under mu)
	preferred   string   // leader redirect hint for the next remount (under mu)
	failover    bool     // MountReplicas: re-home and replay on ErrNotLeader
	cred        vfs.Cred
	consistency Consistency
	opts        Options

	// Exactly-once identity: every mutating request is stamped with
	// (clientID, next seq) so a replica group can deduplicate replays.
	clientID uint64
	seq      atomic.Uint64

	// state is read lock-free on hot paths; transitions happen under mu.
	state atomic.Int32

	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	gen     uint64 // bumped on every (re)connect; stale I/O detects itself
	connErr error  // why state is down
	nextID  uint64
	pending map[uint64]chan *response
	watches map[uint64]*RemoteWatch

	// sendMu serializes encoder writes so a blocked send never holds mu
	// (the failAll/call deadlock of the unbounded design).
	sendMu sync.Mutex

	// Eventual-consistency write pipeline.
	queueMu   sync.Mutex
	queue     []request
	queueCond *sync.Cond
	flushing  bool
	flushErr  error
	stopFlush chan struct{}
	flushDone chan struct{}

	// Per-subtree consistency overrides (path prefix -> mode).
	overrideMu sync.RWMutex
	overrides  map[string]Consistency

	counters clientCounters
}

// Mount connects to a server with the given credential and default
// consistency mode, using default resilience options (bounded RPCs, no
// automatic reconnect).
func Mount(addr string, cred vfs.Cred, consistency Consistency) (*Client, error) {
	return MountOptions(addr, cred, consistency, Options{})
}

// MountOptions is Mount with explicit resilience options.
func MountOptions(addr string, cred vfs.Cred, consistency Consistency, opts Options) (*Client, error) {
	return mountAddrs([]string{addr}, cred, consistency, opts, false)
}

// MountReplicas mounts a replicated export given every replica's
// address. The mount homes on whichever replica answers first and
// follows the leader from there: a write rejected with ErrNotLeader (or
// lost to a dead leader) tears the connection down, the remount
// machinery redials — preferring the rejecting replica's leader hint —
// and the session (hello, consistency overrides, watches, queued
// writes) replays on the new home. In-flight mutations are replayed
// under their original (ClientID, Seq) identity, which every replica's
// apply path deduplicates: a mid-failover flow push lands exactly once.
// Reconnect is implied.
func MountReplicas(addrs []string, cred vfs.Cred, consistency Consistency, opts Options) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("dfs: MountReplicas: no addresses")
	}
	opts.Reconnect = true
	return mountAddrs(append([]string(nil), addrs...), cred, consistency, opts, true)
}

func mountAddrs(addrs []string, cred vfs.Cred, consistency Consistency, opts Options, failover bool) (*Client, error) {
	opts = opts.withDefaults()
	var (
		conn net.Conn
		addr string
		idx  int
		err  error
	)
	for i, a := range addrs {
		if conn, err = net.DialTimeout("tcp", a, dialTimeout(opts)); err == nil {
			addr, idx = a, i
			break
		}
	}
	if conn == nil {
		return nil, fmt.Errorf("dfs: mount %s: %w", strings.Join(addrs, ","), err)
	}
	c := &Client{
		addr:        addr,
		addrs:       addrs,
		addrIdx:     idx,
		failover:    failover,
		cred:        cred,
		consistency: consistency,
		opts:        opts,
		clientID:    newClientID(),
		conn:        conn,
		enc:         gob.NewEncoder(conn),
		pending:     make(map[uint64]chan *response),
		watches:     make(map[uint64]*RemoteWatch),
		overrides:   make(map[string]Consistency),
		stopFlush:   make(chan struct{}),
		flushDone:   make(chan struct{}),
	}
	c.queueCond = sync.NewCond(&c.queueMu)
	if err := c.enc.Encode(hello{UID: cred.UID, GID: cred.GID, Groups: cred.Groups, Consistency: consistency}); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop(0, conn)
	go c.flushLoop()
	return c, nil
}

// newClientID draws a mount's exactly-once identity. A collision would
// merge two clients' dedup windows on the replicas, so this is 64 bits
// from the OS entropy pool rather than a process-local counter.
func newClientID() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic("dfs: no entropy for client ID: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

func dialTimeout(opts Options) time.Duration {
	if opts.CallTimeout > 0 {
		return opts.CallTimeout
	}
	return DefaultCallTimeout
}

// Close flushes pending writes and tears the mount down. When the
// connection is already gone, queued eventual writes are dropped (with
// Reconnect they would otherwise hold Close hostage to the server's
// return).
func (c *Client) Close() error {
	if c.state.Load() == stateUp {
		_ = c.Flush() //yancvet:allow errdrop best-effort flush; Close must not be held hostage by a dead server
	}
	c.mu.Lock()
	if c.state.Load() == stateClosed {
		c.mu.Unlock()
		return nil
	}
	c.state.Store(stateClosed)
	conn := c.conn
	pending := c.pending
	c.pending = make(map[uint64]chan *response)
	watches := c.watches
	c.watches = make(map[uint64]*RemoteWatch)
	c.mu.Unlock()
	close(c.stopFlush)
	c.queueCond.Broadcast()
	<-c.flushDone
	var err error
	if conn != nil {
		err = conn.Close()
	}
	for _, ch := range pending {
		ch <- &response{Err: "mount closed", ErrKind: errConn}
	}
	for _, w := range watches {
		w.close()
	}
	if errors.Is(err, net.ErrClosed) {
		err = nil // the connection was already torn down by a fault
	}
	return err
}

// readLoop decodes responses and watch events for one connection
// generation. Any decode error reports the connection lost.
func (c *Client) readLoop(gen uint64, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var rsp response
		if err := dec.Decode(&rsp); err != nil {
			c.connLost(gen, err)
			return
		}
		if rsp.Event != nil {
			c.mu.Lock()
			w := c.watches[rsp.ID]
			c.mu.Unlock()
			if w != nil {
				w.deliver(*rsp.Event)
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[rsp.ID]
		delete(c.pending, rsp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &rsp
		}
	}
}

// connLost transitions generation gen from up to down: every pending
// call fails immediately with the connection error (no caller is ever
// left hanging), and — with Reconnect — a background remount loop
// starts. Without Reconnect the failure is permanent: watches close and
// later calls keep failing fast with the same error.
func (c *Client) connLost(gen uint64, err error) {
	c.mu.Lock()
	if c.gen != gen || c.state.Load() != stateUp {
		c.mu.Unlock()
		return // a different generation already owns the connection
	}
	c.state.Store(stateDown)
	c.connErr = err
	conn := c.conn
	pending := c.pending
	c.pending = make(map[uint64]chan *response)
	var dead []*RemoteWatch
	if !c.opts.Reconnect {
		for _, w := range c.watches {
			dead = append(dead, w)
		}
		c.watches = make(map[uint64]*RemoteWatch)
	}
	c.mu.Unlock()
	conn.Close()
	for _, ch := range pending {
		ch <- &response{Err: err.Error(), ErrKind: errConn}
	}
	for _, w := range dead {
		w.close()
	}
	c.queueCond.Broadcast()
	if c.opts.Reconnect {
		go c.reconnectLoop(gen)
	}
}

// reconnectLoop redials with capped exponential backoff until the mount
// is re-established or closed. Each attempt may land on a different
// replica (see nextAddr), which is the whole failover mechanism.
func (c *Client) reconnectLoop(gen uint64) {
	bo := backoff.New(c.opts.retryPolicy())
	for {
		select {
		case <-c.stopFlush:
			return
		case <-backoff.Wait(bo.Next()):
		}
		if c.state.Load() == stateClosed {
			return
		}
		if c.remount(gen) {
			return
		}
	}
}

// nextAddr picks the address for the next reconnect attempt: a pending
// leader redirect hint wins, else round-robin over the replica set (a
// single-address mount just keeps redialing its server).
func (c *Client) nextAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.preferred != "" {
		a := c.preferred
		c.preferred = ""
		for i, known := range c.addrs {
			if known == a {
				c.addrIdx = i
			}
		}
		return a
	}
	c.addrIdx = (c.addrIdx + 1) % len(c.addrs)
	return c.addrs[c.addrIdx]
}

// redirect re-homes a failover mount after a leader rejection: remember
// the hint (when the rejecting replica knew the leader) and tear the
// connection down, so the same remount path a crash takes replays the
// session — overrides, watches, queued writes — on the leader.
func (c *Client) redirect(hint string) {
	if !c.failover {
		return
	}
	c.mu.Lock()
	if hint != "" {
		c.preferred = hint
	}
	gen := c.gen
	c.mu.Unlock()
	c.connLost(gen, ErrNotLeader)
}

// remount performs one reconnect attempt: dial, replay the hello, swap
// the connection in under a new generation, then restore session state —
// consistency overrides and watches — and wake the flusher so writes
// queued during the outage drain. It reports whether the loop is done
// (success, or the mount closed underneath it).
func (c *Client) remount(gen uint64) bool {
	addr := c.nextAddr()
	conn, err := net.DialTimeout("tcp", addr, dialTimeout(c.opts))
	if err != nil {
		return false
	}
	enc := gob.NewEncoder(conn)
	//yancvet:wallclock transport write deadline must be real time
	conn.SetWriteDeadline(time.Now().Add(dialTimeout(c.opts)))
	err = c.withSend(func() error {
		return enc.Encode(hello{UID: c.cred.UID, GID: c.cred.GID, Groups: c.cred.Groups, Consistency: c.consistency})
	})
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return false
	}

	c.mu.Lock()
	if c.state.Load() == stateClosed || c.gen != gen {
		c.mu.Unlock()
		conn.Close()
		return true
	}
	if addr != c.addr {
		c.counters.failovers.Add(1)
	}
	c.addr = addr
	c.conn, c.enc = conn, enc
	c.gen++
	newGen := c.gen
	c.connErr = nil
	c.state.Store(stateUp)
	c.counters.reconnects.Add(1)
	watches := make(map[uint64]*RemoteWatch, len(c.watches))
	for id, w := range c.watches {
		watches[id] = w
	}
	c.mu.Unlock()

	go c.readLoop(newGen, conn)

	// Replay per-subtree consistency overrides so the server again knows
	// which subtrees demand strict routing.
	c.overrideMu.RLock()
	overrides := make(map[string]Consistency, len(c.overrides))
	for p, m := range c.overrides {
		overrides[p] = m
	}
	c.overrideMu.RUnlock()
	for path, mode := range overrides {
		//yancvet:allow errdrop best-effort reapply on reconnect; a failure falls back to server defaults
		_ = c.SetXattr(path, ConsistencyXattr, []byte(mode.String()))
	}

	// Re-register watches under their original IDs. Events emitted while
	// the mount was down are gone forever, so each watch gets a synthetic
	// Overflow — the same signal the kernel-side buffer uses — telling the
	// subscriber to rescan rather than trust its incremental view.
	for id, w := range watches {
		if c.reRegisterWatch(id, w) == nil {
			w.deliver(vfs.Event{Op: vfs.OpOverflow, Path: w.path})
		}
	}
	c.queueCond.Broadcast()
	return true
}

// reRegisterWatch replays one watch subscription on the fresh
// connection. Failures are left for the next reconnect round.
func (c *Client) reRegisterWatch(id uint64, w *RemoteWatch) error {
	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.state.Load() != stateUp {
		c.mu.Unlock()
		return ErrDisconnected
	}
	gen, conn, enc := c.gen, c.conn, c.enc
	c.pending[id] = ch
	c.mu.Unlock()
	req := request{ID: id, Op: opWatch, Path: w.path, Mask: uint32(w.mask), Recursive: w.recursive}
	if err := c.send(conn, enc, &req); err != nil {
		c.unregister(id)
		c.connLost(gen, err)
		return err
	}
	_, err := c.await(id, ch, gen)
	return err
}

// register allocates an ID for req and parks ch to receive its
// response. It fails fast when the mount is closed or down.
func (c *Client) register(req *request, ch chan *response) (gen uint64, conn net.Conn, enc *gob.Encoder, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.state.Load() {
	case stateClosed:
		return 0, nil, nil, ErrClosed
	case stateDown:
		return 0, nil, nil, fmt.Errorf("%w: %v", ErrDisconnected, c.connErr)
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	return c.gen, c.conn, c.enc, nil
}

func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// withSend runs fn (an encoder write) under the send lock.
func (c *Client) withSend(fn func() error) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return fn()
}

// send encodes req on conn under the send lock with a write deadline, so
// a jammed transport can never wedge the whole client.
func (c *Client) send(conn net.Conn, enc *gob.Encoder, req *request) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if t := c.opts.CallTimeout; t > 0 {
		//yancvet:wallclock transport write deadline must be real time
		conn.SetWriteDeadline(time.Now().Add(t))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return enc.Encode(req)
}

// await blocks for the response to id, bounded by CallTimeout. A timeout
// tears the connection down: a server that stopped answering must not
// be allowed to wedge every subsequent call.
func (c *Client) await(id uint64, ch chan *response, gen uint64) (*response, error) {
	var timeout <-chan time.Time
	if c.opts.CallTimeout > 0 {
		//yancvet:wallclock RPC deadline is a real-time promise to the caller
		timer := time.NewTimer(c.opts.CallTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case rsp := <-ch:
		if err := wireError(rsp); err != nil {
			return rsp, err
		}
		return rsp, nil
	case <-timeout:
		c.unregister(id)
		err := fmt.Errorf("%w after %v", ErrTimeout, c.opts.CallTimeout)
		c.connLost(gen, err)
		return nil, err
	}
}

// call performs one synchronous round trip.
func (c *Client) call(req request) (*response, error) {
	c.counters.calls.Add(1)
	ch := make(chan *response, 1)
	gen, conn, enc, err := c.register(&req, ch)
	if err != nil {
		c.counters.errors.Add(1)
		return nil, err
	}
	if err := c.send(conn, enc, &req); err != nil {
		c.unregister(req.ID)
		c.connLost(gen, err)
		c.counters.errors.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	rsp, err := c.await(req.ID, ch, gen)
	if err != nil {
		c.counters.errors.Add(1)
		if errors.Is(err, ErrTimeout) {
			c.counters.timeouts.Add(1)
		}
	}
	return rsp, err
}

// isConnError reports whether err means the transport failed (retryable
// after a remount) rather than the server refusing the operation.
func isConnError(err error) bool {
	return errors.Is(err, ErrDisconnected) || errors.Is(err, ErrTimeout)
}

// stamp assigns a mutating request its exactly-once (ClientID, Seq)
// identity. Idempotent: a replay keeps its original stamp.
func (c *Client) stamp(req *request) {
	if req.Seq == 0 && mutating(req.Op) {
		req.ClientID = c.clientID
		req.Seq = c.seq.Add(1)
	}
}

// mcall performs one strict mutating RPC. On a failover mount the
// request is stamped and retried across leader redirects and remounts:
// at-least-once delivery, which the replicas' dedup windows turn into
// exactly-once apply.
func (c *Client) mcall(req request) (*response, error) {
	if !c.failover {
		return c.call(req)
	}
	c.stamp(&req)
	return c.retry(req, true)
}

// rcall performs one read RPC, retried across failover without a
// sequence stamp (reads are idempotent by nature).
func (c *Client) rcall(req request) (*response, error) {
	if !c.failover {
		return c.call(req)
	}
	return c.retry(req, false)
}

// retry drives one RPC to completion across leader changes. The loop
// runs until the call succeeds, fails with a genuine server-side error,
// or exhausts the failover budget (Options.FailoverMaxElapsed).
func (c *Client) retry(req request, isWrite bool) (*response, error) {
	bo := backoff.New(c.opts.failoverPolicy())
	for {
		rsp, err := c.call(req)
		if err == nil {
			return rsp, nil
		}
		switch {
		case errors.Is(err, ErrClosed):
			return rsp, err
		case errors.Is(err, ErrNotLeader):
			var hint string
			if rsp != nil {
				hint = rsp.Leader
			}
			c.redirect(hint)
		case isConnError(err):
			// The remount machinery is already re-homing; wait it out.
		default:
			return rsp, err // the server refused the op; retrying cannot help
		}
		d, ok := bo.NextOK()
		if !ok {
			return rsp, err
		}
		if isWrite {
			c.counters.replayedWrites.Add(1)
		}
		select {
		case <-c.stopFlush:
			return rsp, err
		case <-backoff.Wait(d):
		}
	}
}

// SetConsistency records a subtree override and persists it as the
// subtree's xattr so other mounts can observe the requirement.
func (c *Client) SetConsistency(path string, mode Consistency) error {
	path = vfs.Clean(path)
	if err := c.SetXattr(path, ConsistencyXattr, []byte(mode.String())); err != nil {
		return err
	}
	c.overrideMu.Lock()
	c.overrides[path] = mode
	c.overrideMu.Unlock()
	return nil
}

// modeFor resolves the consistency governing a path: the deepest subtree
// override wins, else the mount default.
func (c *Client) modeFor(path string) Consistency {
	c.overrideMu.RLock()
	defer c.overrideMu.RUnlock()
	if len(c.overrides) == 0 {
		return c.consistency
	}
	path = vfs.Clean(path)
	var prefixes []string
	for p := range c.overrides {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return len(prefixes[i]) > len(prefixes[j]) })
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") || p == "/" {
			return c.overrides[p]
		}
	}
	return c.consistency
}

// write routes a mutating request per the governing consistency mode.
// Eventual writes join a bounded queue; during an outage (with
// Reconnect) they wait there for the remount instead of failing.
func (c *Client) write(path string, req request) error {
	if c.modeFor(path) == Strict {
		_, err := c.mcall(req)
		return err
	}
	if c.state.Load() == stateClosed {
		return ErrClosed
	}
	// Stamp at queue time: if a flush batch is cut off mid-failover and
	// replayed on the new leader, the replicas dedup each sub-write.
	c.stamp(&req)
	c.queueMu.Lock()
	if len(c.queue) >= c.opts.MaxQueue {
		c.queueMu.Unlock()
		c.counters.queueRejects.Add(1)
		return fmt.Errorf("%w (%d writes)", ErrQueueFull, c.opts.MaxQueue)
	}
	c.queue = append(c.queue, req)
	c.queueMu.Unlock()
	c.counters.queued.Add(1)
	c.queueCond.Signal()
	return nil
}

// flushLoop drains the eventual-consistency queue in order, batching
// whatever has accumulated into one round trip. Transport failures
// requeue the batch and retry with backoff (the writes survive a
// remount); server-side errors surface at the next Flush, as before.
func (c *Client) flushLoop() {
	defer close(c.flushDone)
	bo := backoff.New(c.opts.retryPolicy())
	for {
		c.queueMu.Lock()
		for len(c.queue) == 0 {
			select {
			case <-c.stopFlush:
				c.queueMu.Unlock()
				return
			default:
			}
			c.queueCond.Wait()
		}
		batch := c.queue
		c.queue = nil
		c.flushing = true
		c.queueMu.Unlock()

		rsp, err := c.call(request{Op: opBatch, Sub: batch})

		retryable := isConnError(err) || errors.Is(err, ErrNotLeader)
		if err != nil && retryable && c.opts.Reconnect && c.state.Load() != stateClosed {
			if errors.Is(err, ErrNotLeader) {
				var hint string
				if rsp != nil {
					hint = rsp.Leader
				}
				c.redirect(hint)
				c.counters.replayedWrites.Add(uint64(len(batch)))
			}
			c.queueMu.Lock()
			c.queue = append(batch, c.queue...)
			c.flushing = false
			c.queueMu.Unlock()
			select {
			case <-c.stopFlush:
				return
			case <-backoff.Wait(bo.Next()):
			}
			continue
		}
		bo.Reset()
		if err == nil {
			c.counters.flushed.Add(uint64(len(batch)))
		}
		c.queueMu.Lock()
		c.flushing = false
		if err != nil && c.flushErr == nil {
			c.flushErr = err
		}
		c.queueMu.Unlock()
		c.queueCond.Broadcast()
	}
}

// Flush blocks until every queued eventual write has been applied on the
// server, returning the first flush error since the previous Flush. This
// is the barrier an application uses before reading back its own
// eventual-mode writes. With Reconnect, Flush waits out an outage (the
// barrier holds until the writes actually land); without it, a dead
// connection drains the queue as fast-failing batches and the error
// surfaces here.
func (c *Client) Flush() error {
	c.queueMu.Lock()
	defer c.queueMu.Unlock()
	for (len(c.queue) > 0 || c.flushing) && !c.stopped() {
		c.queueCond.Wait()
	}
	err := c.flushErr
	c.flushErr = nil
	return err
}

// stopped reports whether the flush pipeline has shut down (mount
// closed). Called with queueMu held; must not take mu.
func (c *Client) stopped() bool {
	select {
	case <-c.stopFlush:
		return true
	default:
		return false
	}
}

// Mkdir creates a directory on the server.
func (c *Client) Mkdir(path string, mode vfs.FileMode) error {
	return c.write(path, request{Op: opMkdir, Path: path, Mode: uint16(mode)})
}

// MkdirAll creates path and missing parents.
func (c *Client) MkdirAll(path string, mode vfs.FileMode) error {
	return c.write(path, request{Op: opMkdirAll, Path: path, Mode: uint16(mode)})
}

// WriteFile creates or replaces a file.
func (c *Client) WriteFile(path string, data []byte, mode vfs.FileMode) error {
	return c.write(path, request{Op: opWriteFile, Path: path, Data: append([]byte(nil), data...), Mode: uint16(mode)})
}

// WriteString writes a string file.
func (c *Client) WriteString(path, s string) error {
	return c.WriteFile(path, []byte(s), 0o644)
}

// AppendFile appends to a file.
func (c *Client) AppendFile(path string, data []byte, mode vfs.FileMode) error {
	return c.write(path, request{Op: opAppendFile, Path: path, Data: append([]byte(nil), data...), Mode: uint16(mode)})
}

// ReadFile reads a whole file.
func (c *Client) ReadFile(path string) ([]byte, error) {
	rsp, err := c.rcall(request{Op: opReadFile, Path: path})
	if err != nil {
		return nil, err
	}
	return rsp.Data, nil
}

// ReadString reads a whitespace-trimmed string file.
func (c *Client) ReadString(path string) (string, error) {
	b, err := c.ReadFile(path)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// Remove unlinks a file or empty (or semantically recursive) directory.
func (c *Client) Remove(path string) error {
	return c.write(path, request{Op: opRemove, Path: path})
}

// RemoveAll removes a subtree.
func (c *Client) RemoveAll(path string) error {
	return c.write(path, request{Op: opRemoveAll, Path: path})
}

// Rename moves a file or directory.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.write(oldPath, request{Op: opRename, Path: oldPath, Path2: newPath})
}

// Symlink creates a symbolic link.
func (c *Client) Symlink(target, linkPath string) error {
	return c.write(linkPath, request{Op: opSymlink, Path: linkPath, Path2: target})
}

// Readlink reads a symlink target.
func (c *Client) Readlink(path string) (string, error) {
	rsp, err := c.rcall(request{Op: opReadlink, Path: path})
	if err != nil {
		return "", err
	}
	return string(rsp.Data), nil
}

// Link creates a hard link.
func (c *Client) Link(oldPath, newPath string) error {
	return c.write(newPath, request{Op: opLink, Path: oldPath, Path2: newPath})
}

// ReadDir lists a directory.
func (c *Client) ReadDir(path string) ([]vfs.DirEntry, error) {
	rsp, err := c.rcall(request{Op: opReadDir, Path: path})
	if err != nil {
		return nil, err
	}
	return rsp.Entries, nil
}

// Stat stats a path, following symlinks.
func (c *Client) Stat(path string) (vfs.Stat, error) {
	rsp, err := c.rcall(request{Op: opStat, Path: path})
	if err != nil {
		return vfs.Stat{}, err
	}
	return rsp.Stat, nil
}

// Lstat stats a path without following a final symlink.
func (c *Client) Lstat(path string) (vfs.Stat, error) {
	rsp, err := c.rcall(request{Op: opLstat, Path: path})
	if err != nil {
		return vfs.Stat{}, err
	}
	return rsp.Stat, nil
}

// Exists reports whether path resolves.
func (c *Client) Exists(path string) bool {
	_, err := c.Stat(path)
	return err == nil
}

// IsDir reports whether path is a directory.
func (c *Client) IsDir(path string) bool {
	st, err := c.Stat(path)
	return err == nil && st.IsDir()
}

// Chmod changes permissions.
func (c *Client) Chmod(path string, mode vfs.FileMode) error {
	return c.write(path, request{Op: opChmod, Path: path, Mode: uint16(mode)})
}

// Chown changes ownership.
func (c *Client) Chown(path string, uid, gid int) error {
	return c.write(path, request{Op: opChown, Path: path, UID: uid, GID: gid})
}

// SetXattr sets an extended attribute (always strict: metadata like
// consistency requirements must not lag).
func (c *Client) SetXattr(path, attr string, value []byte) error {
	_, err := c.mcall(request{Op: opSetXattr, Path: path, Path2: attr, Data: value})
	return err
}

// GetXattr reads an extended attribute.
func (c *Client) GetXattr(path, attr string) ([]byte, error) {
	rsp, err := c.rcall(request{Op: opGetXattr, Path: path, Path2: attr})
	if err != nil {
		return nil, err
	}
	return rsp.Data, nil
}

// ListXattr lists attribute names.
func (c *Client) ListXattr(path string) ([]string, error) {
	rsp, err := c.rcall(request{Op: opListXattr, Path: path})
	if err != nil {
		return nil, err
	}
	return rsp.Names, nil
}

// RemoveXattr removes an attribute.
func (c *Client) RemoveXattr(path, attr string) error {
	_, err := c.mcall(request{Op: opRemoveXattr, Path: path, Path2: attr})
	return err
}

// Glob matches a wildcard pattern server-side.
func (c *Client) Glob(pattern string) ([]string, error) {
	rsp, err := c.rcall(request{Op: opGlob, Path: pattern})
	if err != nil {
		return nil, err
	}
	return rsp.Names, nil
}

// RemoteWatch is a watch on the exported file system; events stream over
// the mount connection. On a reconnecting mount the subscription
// survives connection loss: it is replayed on the fresh connection and a
// synthetic Overflow event marks the gap.
type RemoteWatch struct {
	C  <-chan vfs.Event
	ch chan vfs.Event

	client    *Client
	id        uint64
	path      string
	mask      vfs.EventOp
	recursive bool

	mu     sync.Mutex
	closed bool
}

// AddWatch subscribes to events under path on the server.
func (c *Client) AddWatch(path string, mask vfs.EventOp, recursive bool) (*RemoteWatch, error) {
	w := &RemoteWatch{
		client:    c,
		ch:        make(chan vfs.Event, 4096),
		path:      path,
		mask:      mask,
		recursive: recursive,
	}
	w.C = w.ch
	// Register the watch entry before the call so no event can race past.
	ch := make(chan *response, 1)
	c.mu.Lock()
	switch c.state.Load() {
	case stateClosed:
		c.mu.Unlock()
		return nil, ErrClosed
	case stateDown:
		err := fmt.Errorf("%w: %v", ErrDisconnected, c.connErr)
		c.mu.Unlock()
		return nil, err
	}
	gen, conn, enc := c.gen, c.conn, c.enc
	c.nextID++
	id := c.nextID
	w.id = id
	c.pending[id] = ch
	c.watches[id] = w
	c.mu.Unlock()
	req := request{ID: id, Op: opWatch, Path: path, Mask: uint32(mask), Recursive: recursive}
	if err := c.send(conn, enc, &req); err != nil {
		c.unregister(id)
		c.dropWatch(id)
		c.connLost(gen, err)
		return nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	if _, err := c.await(id, ch, gen); err != nil {
		c.dropWatch(id)
		return nil, err
	}
	return w, nil
}

func (c *Client) dropWatch(id uint64) {
	c.mu.Lock()
	delete(c.watches, id)
	c.mu.Unlock()
}

func (w *RemoteWatch) deliver(ev vfs.Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	select {
	case w.ch <- ev:
	default: // drop like inotify on overflow
	}
}

func (w *RemoteWatch) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		close(w.ch)
	}
}

// Close unsubscribes.
func (w *RemoteWatch) Close() {
	c := w.client
	c.dropWatch(w.id)
	//yancvet:allow errdrop best-effort unsubscribe; the server reaps watches of dead connections anyway
	_, _ = c.call(request{Op: opUnwatch, Mask: uint32(w.id)})
	w.close()
}
