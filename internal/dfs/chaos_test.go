package dfs

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"yanc/internal/faultnet"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// eventually polls cond for up to five seconds.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fastOpts are mount options tuned for test-speed failure detection.
func fastOpts(reconnect bool) Options {
	return Options{
		CallTimeout: 2 * time.Second,
		Reconnect:   reconnect,
		RetryMin:    5 * time.Millisecond,
		RetryMax:    50 * time.Millisecond,
	}
}

// TestCallsFailFastAfterDisconnect is the regression test for the mount
// hang: once the connection is lost, strict calls must return the
// connection error immediately — not block forever on a dead pending
// channel.
func TestCallsFailFastAfterDisconnect(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := MountOptions(addr, vfs.Root, Strict, fastOpts(false))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mkdir("/pre", 0o755); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The first call after the close may race the readLoop noticing EOF;
	// either way it must error out, not hang.
	eventually(t, "disconnect surfaced", func() bool {
		return c.Mkdir("/x", 0o755) != nil
	})
	// From here every call fails fast with the connection sentinel.
	start := time.Now()
	err = c.Mkdir("/y", 0o755)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("post-disconnect error = %v, want ErrDisconnected", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("post-disconnect call took %v, want immediate", elapsed)
	}
}

// TestMountSurvivesServerRestart drives the full recovery story: the
// server dies; pending strict RPCs fail fast; eventual writes queue;
// the mount reconnects with backoff, replays its consistency overrides,
// re-registers its watch (announcing the gap with an Overflow event),
// and flushes the queued writes.
func TestMountSurvivesServerRestart(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := MountOptions(addr, vfs.Root, Eventual, fastOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Mkdir("/hosts/h1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.SetConsistency("/hosts", Strict); err != nil {
		t.Fatal(err)
	}
	w, err := c.AddWatch("/hosts", vfs.OpCreate|vfs.OpWrite|vfs.OpOverflow, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := c.WriteString("/hosts/h1/ip", "10.0.0.1\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	s.Close()
	// Strict calls fail fast while down (the /hosts override routes this
	// write strictly).
	eventually(t, "disconnect surfaced", func() bool {
		return c.WriteString("/hosts/h1/ip", "10.0.0.2\n") != nil
	})
	// Eventual writes queue for the recovery instead of failing.
	if err := c.WriteString("/limbo", "queued during outage\n"); err != nil {
		t.Fatalf("eventual write during outage = %v", err)
	}

	// Restart the server on the same address and fs (its state survives,
	// as any durable export's would).
	var s2 *Server
	eventually(t, "rebind", func() bool {
		s2 = NewServer(y.VFS())
		_, err := s2.Listen(addr)
		return err == nil
	})
	defer s2.Close()

	// The mount recovers: the flush barrier completes and the queued
	// write landed.
	eventually(t, "flush after recovery", func() bool {
		if err := c.Flush(); err != nil {
			return false
		}
		got, err := c.ReadString("/limbo")
		return err == nil && got == "queued during outage"
	})
	// The consistency override survived the remount: strict writes under
	// /hosts work synchronously again.
	if err := c.WriteString("/hosts/h1/ip", "10.0.0.3\n"); err != nil {
		t.Fatalf("strict write after recovery = %v", err)
	}
	if got, _ := y.Root().ReadString("/hosts/h1/ip"); got != "10.0.0.3" {
		t.Fatalf("strict write not visible server-side: %q", got)
	}

	// The watch was re-registered: first the synthetic Overflow marking
	// the gap, then live events from the fresh connection.
	sawOverflow, sawLive := false, false
	deadline := time.After(5 * time.Second)
	for !sawOverflow || !sawLive {
		select {
		case ev := <-w.C:
			switch {
			case ev.Op&vfs.OpOverflow != 0:
				sawOverflow = true
			case sawOverflow && ev.Path == "/hosts/h1/ip":
				sawLive = true
			}
		case <-deadline:
			t.Fatalf("watch recovery incomplete: overflow=%v live=%v", sawOverflow, sawLive)
		}
	}
}

// TestMountPartitionFailsFastAndRecovers uses faultnet's blackhole — the
// failure TCP alone never surfaces as an error — to prove the per-RPC
// deadline is what unsticks callers, and that the timeout-triggered
// teardown feeds the same reconnect path as a clean close.
func TestMountPartitionFailsFastAndRecovers(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	inj := faultnet.New(1)
	ln, err := inj.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListenOn(ln); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	opts := fastOpts(true)
	opts.CallTimeout = 200 * time.Millisecond
	c, err := MountOptions(ln.Addr().String(), vfs.Root, Strict, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Mkdir("/pre", 0o755); err != nil {
		t.Fatal(err)
	}

	inj.Partition()
	start := time.Now()
	err = c.Mkdir("/blackholed", 0o755)
	if err == nil {
		t.Fatal("call into a blackhole succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("blackholed call took %v, want ~CallTimeout", elapsed)
	}
	inj.Heal()

	eventually(t, "recovery through faultnet", func() bool {
		return c.Mkdir("/after-heal", 0o755) == nil
	})
}

// TestChaosNoGoroutineLeaks closes everything down after a
// disconnect/reconnect cycle and checks the goroutine population
// returns to baseline — reconnect loops, read loops, and flushers must
// all terminate.
func TestChaosNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := MountOptions(addr, vfs.Root, Eventual, fastOpts(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/a", 0o755); err != nil {
		t.Fatal(err)
	}
	s.Close()
	eventually(t, "down", func() bool { return c.state.Load() != stateUp })
	// The reconnect loop is spinning against a dead address now.
	time.Sleep(50 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatalf("close = %v", err)
	}
	eventually(t, "goroutines drained", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+3
	})
}
