// Package dfs layers a distributed file system over the yanc VFS,
// realizing §6 of the paper: "you can layer any number of distributed
// file systems on top of the yanc file system and arrive at a distributed
// SDN controller." A Server exports a file system over TCP (the role NFS
// played in the paper's proof of concept); a Client mounts it and exposes
// the same operation set as a local vfs.Proc, so applications written
// against the file system run unchanged on a remote machine.
//
// Two consistency modes are supported, selected per mount and overridable
// per subtree through the user.yanc.consistency xattr the paper plans for
// (§5.1, §6, WheelFS-style): "strict" makes every write a synchronous
// round trip; "eventual" acknowledges writes locally and flushes them in
// the background, trading visibility lag for write latency.
package dfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"strings"

	"yanc/internal/vfs"
)

// Consistency selects the write discipline of a mount or subtree.
type Consistency int

// Consistency levels.
const (
	Strict Consistency = iota
	Eventual
)

// ConsistencyXattr is the extended attribute carrying a subtree's
// consistency requirement.
const ConsistencyXattr = "user.yanc.consistency"

func (c Consistency) String() string {
	if c == Eventual {
		return "eventual"
	}
	return "strict"
}

// ParseConsistency reads a consistency name.
func ParseConsistency(s string) (Consistency, error) {
	switch strings.TrimSpace(s) {
	case "strict":
		return Strict, nil
	case "eventual":
		return Eventual, nil
	default:
		return Strict, fmt.Errorf("dfs: unknown consistency %q", s)
	}
}

// op codes.
const (
	opMkdir = iota
	opMkdirAll
	opWriteFile
	opAppendFile
	opReadFile
	opRemove
	opRemoveAll
	opRename
	opSymlink
	opReadlink
	opLink
	opReadDir
	opStat
	opLstat
	opChmod
	opChown
	opSetXattr
	opGetXattr
	opListXattr
	opRemoveXattr
	opWatch
	opUnwatch
	opGlob
	opBatch
	// Replication ops, exchanged only between replicas (sessions whose
	// hello carried Peer=true).
	opAppendEntries // leader -> follower: log entries + commit index (doubles as the lease heartbeat)
	opRequestVote   // candidate -> peer: election for a new term
	opNoop          // log-only: appended by a fresh leader to commit earlier-term entries
)

// mutating reports whether op changes file-system state and therefore
// must flow through the replication log on a replicated export.
func mutating(op int) bool {
	switch op {
	case opMkdir, opMkdirAll, opWriteFile, opAppendFile, opRemove, opRemoveAll,
		opRename, opSymlink, opLink, opChmod, opChown, opSetXattr, opRemoveXattr, opBatch:
		return true
	}
	return false
}

// request is one wire request. Batch requests carry sub-requests.
type request struct {
	ID        uint64
	Op        int
	Path      string
	Path2     string // rename/symlink/link targets, xattr names
	Data      []byte
	Mode      uint16
	UID       int
	GID       int
	Mask      uint32 // watch mask
	Recursive bool
	Sub       []request // opBatch

	// Exactly-once identity of a mutating op. A client that fails over
	// between replicas replays in-flight writes with the same (ClientID,
	// Seq); the apply path deduplicates them, so a mid-failover flow push
	// lands exactly once. Seq 0 means "no dedup" (legacy clients).
	ClientID uint64
	Seq      uint64

	// Replication fields (opAppendEntries / opRequestVote).
	Term      uint64     // sender's term
	From      int        // sender's replica ID
	PrevIndex uint64     // log index preceding Entries
	PrevTerm  uint64     // term of the entry at PrevIndex
	Commit    uint64     // leader's commit index
	Entries   []LogEntry // entries to append (empty = pure heartbeat)
	LastIndex uint64     // candidate's last log index (opRequestVote)
	LastTerm  uint64     // candidate's last log term (opRequestVote)
}

// response answers a request; watch events reuse the watch's request ID
// with Event set.
type response struct {
	ID      uint64
	Err     string
	ErrKind int // maps back to a vfs sentinel
	Data    []byte
	Entries []vfs.DirEntry
	Stat    vfs.Stat
	Names   []string
	Event   *vfs.Event

	// Replication fields.
	Term       uint64 // responder's term (lets a stale leader/candidate step down)
	Ok         bool   // append accepted / vote granted
	MatchIndex uint64 // highest log index known replicated on the responder
	Leader     string // redirect hint: the address of the current leader, if known
}

// LogEntry is one mutating operation in the replication log. Index is
// 1-based; Term is the leader term that appended it. ClientID/Seq mirror
// the originating request so every replica's apply path can deduplicate
// client replays identically.
type LogEntry struct {
	Index    uint64
	Term     uint64
	ClientID uint64
	Seq      uint64
	Req      request
}

// Error kinds for faithful errors.Is behaviour across the wire.
const (
	errNone = iota
	errNotExist
	errExist
	errNotDir
	errIsDir
	errNotEmpty
	errPerm
	errAccess
	errInvalid
	errNoAttr
	errQuota
	errOther
	// errConn is fabricated client-side for requests orphaned by a lost
	// connection; it never crosses the wire.
	errConn
	// errNotLeader reports a mutating op sent to a replica that is not
	// the leader; the response's Leader field carries a redirect hint.
	errNotLeader
)

var kindToErr = map[int]error{
	errNotExist:  vfs.ErrNotExist,
	errExist:     vfs.ErrExist,
	errNotDir:    vfs.ErrNotDir,
	errIsDir:     vfs.ErrIsDir,
	errNotEmpty:  vfs.ErrNotEmpty,
	errPerm:      vfs.ErrPerm,
	errAccess:    vfs.ErrAccess,
	errInvalid:   vfs.ErrInvalid,
	errNoAttr:    vfs.ErrNoAttr,
	errQuota:     vfs.ErrQuota,
	errConn:      ErrDisconnected,
	errNotLeader: ErrNotLeader,
}

func errKind(err error) int {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, vfs.ErrNotExist):
		return errNotExist
	case errors.Is(err, vfs.ErrExist):
		return errExist
	case errors.Is(err, vfs.ErrNotDir):
		return errNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return errIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return errNotEmpty
	case errors.Is(err, vfs.ErrPerm):
		return errPerm
	case errors.Is(err, vfs.ErrAccess):
		return errAccess
	case errors.Is(err, vfs.ErrInvalid):
		return errInvalid
	case errors.Is(err, vfs.ErrNoAttr):
		return errNoAttr
	case errors.Is(err, vfs.ErrQuota):
		return errQuota
	default:
		return errOther
	}
}

// wireError reconstructs a client-side error from a response.
func wireError(rsp *response) error {
	if rsp.Err == "" {
		return nil
	}
	if base, ok := kindToErr[rsp.ErrKind]; ok {
		return fmt.Errorf("dfs: %s: %w", rsp.Err, base)
	}
	return fmt.Errorf("dfs: %s", rsp.Err)
}

// hello is the first message a client sends: its credential (AUTH_SYS
// style, as NFS does) and requested default consistency. Replicas
// introduce themselves with Peer set; peer sessions carry only
// replication ops and are never granted file I/O.
type hello struct {
	UID         int
	GID         int
	Groups      []int
	Consistency Consistency
	Peer        bool
	From        int // peer's replica ID
}

func init() {
	gob.Register(vfs.Event{})
}
