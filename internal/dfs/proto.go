// Package dfs layers a distributed file system over the yanc VFS,
// realizing §6 of the paper: "you can layer any number of distributed
// file systems on top of the yanc file system and arrive at a distributed
// SDN controller." A Server exports a file system over TCP (the role NFS
// played in the paper's proof of concept); a Client mounts it and exposes
// the same operation set as a local vfs.Proc, so applications written
// against the file system run unchanged on a remote machine.
//
// Two consistency modes are supported, selected per mount and overridable
// per subtree through the user.yanc.consistency xattr the paper plans for
// (§5.1, §6, WheelFS-style): "strict" makes every write a synchronous
// round trip; "eventual" acknowledges writes locally and flushes them in
// the background, trading visibility lag for write latency.
package dfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"strings"

	"yanc/internal/vfs"
)

// Consistency selects the write discipline of a mount or subtree.
type Consistency int

// Consistency levels.
const (
	Strict Consistency = iota
	Eventual
)

// ConsistencyXattr is the extended attribute carrying a subtree's
// consistency requirement.
const ConsistencyXattr = "user.yanc.consistency"

func (c Consistency) String() string {
	if c == Eventual {
		return "eventual"
	}
	return "strict"
}

// ParseConsistency reads a consistency name.
func ParseConsistency(s string) (Consistency, error) {
	switch strings.TrimSpace(s) {
	case "strict":
		return Strict, nil
	case "eventual":
		return Eventual, nil
	default:
		return Strict, fmt.Errorf("dfs: unknown consistency %q", s)
	}
}

// op codes.
const (
	opMkdir = iota
	opMkdirAll
	opWriteFile
	opAppendFile
	opReadFile
	opRemove
	opRemoveAll
	opRename
	opSymlink
	opReadlink
	opLink
	opReadDir
	opStat
	opLstat
	opChmod
	opChown
	opSetXattr
	opGetXattr
	opListXattr
	opRemoveXattr
	opWatch
	opUnwatch
	opGlob
	opBatch
)

// request is one wire request. Batch requests carry sub-requests.
type request struct {
	ID        uint64
	Op        int
	Path      string
	Path2     string // rename/symlink/link targets, xattr names
	Data      []byte
	Mode      uint16
	UID       int
	GID       int
	Mask      uint32 // watch mask
	Recursive bool
	Sub       []request // opBatch
}

// response answers a request; watch events reuse the watch's request ID
// with Event set.
type response struct {
	ID      uint64
	Err     string
	ErrKind int // maps back to a vfs sentinel
	Data    []byte
	Entries []vfs.DirEntry
	Stat    vfs.Stat
	Names   []string
	Event   *vfs.Event
}

// Error kinds for faithful errors.Is behaviour across the wire.
const (
	errNone = iota
	errNotExist
	errExist
	errNotDir
	errIsDir
	errNotEmpty
	errPerm
	errAccess
	errInvalid
	errNoAttr
	errQuota
	errOther
	// errConn is fabricated client-side for requests orphaned by a lost
	// connection; it never crosses the wire.
	errConn
)

var kindToErr = map[int]error{
	errNotExist: vfs.ErrNotExist,
	errExist:    vfs.ErrExist,
	errNotDir:   vfs.ErrNotDir,
	errIsDir:    vfs.ErrIsDir,
	errNotEmpty: vfs.ErrNotEmpty,
	errPerm:     vfs.ErrPerm,
	errAccess:   vfs.ErrAccess,
	errInvalid:  vfs.ErrInvalid,
	errNoAttr:   vfs.ErrNoAttr,
	errQuota:    vfs.ErrQuota,
	errConn:     ErrDisconnected,
}

func errKind(err error) int {
	switch {
	case err == nil:
		return errNone
	case errors.Is(err, vfs.ErrNotExist):
		return errNotExist
	case errors.Is(err, vfs.ErrExist):
		return errExist
	case errors.Is(err, vfs.ErrNotDir):
		return errNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return errIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return errNotEmpty
	case errors.Is(err, vfs.ErrPerm):
		return errPerm
	case errors.Is(err, vfs.ErrAccess):
		return errAccess
	case errors.Is(err, vfs.ErrInvalid):
		return errInvalid
	case errors.Is(err, vfs.ErrNoAttr):
		return errNoAttr
	case errors.Is(err, vfs.ErrQuota):
		return errQuota
	default:
		return errOther
	}
}

// wireError reconstructs a client-side error from a response.
func wireError(rsp *response) error {
	if rsp.Err == "" {
		return nil
	}
	if base, ok := kindToErr[rsp.ErrKind]; ok {
		return fmt.Errorf("dfs: %s: %w", rsp.Err, base)
	}
	return fmt.Errorf("dfs: %s", rsp.Err)
}

// hello is the first message a client sends: its credential (AUTH_SYS
// style, as NFS does) and requested default consistency.
type hello struct {
	UID         int
	GID         int
	Groups      []int
	Consistency Consistency
}

func init() {
	gob.Register(vfs.Event{})
}
