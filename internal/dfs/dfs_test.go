package dfs

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// startServer exports a fresh yanc fs and returns its address plus the fs.
func startServer(t *testing.T) (string, *yancfs.FS) {
	t.Helper()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return addr, y
}

func mount(t *testing.T, addr string, mode Consistency) *Client {
	t.Helper()
	c, err := Mount(addr, vfs.Root, mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRemoteBasicOps(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Strict)
	// mkdir through the mount triggers the yanc semantics server-side.
	if err := c.Mkdir("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	if !c.IsDir("/switches/sw1/flows") {
		t.Fatal("semantic mkdir did not run on the server")
	}
	if err := c.WriteString("/switches/sw1/flows-note", "hello\n"); err != nil {
		t.Fatal(err)
	}
	if s, err := c.ReadString("/switches/sw1/flows-note"); err != nil || s != "hello" {
		t.Fatalf("read back = %q %v", s, err)
	}
	// The write is visible locally on the server too.
	if s, _ := y.Root().ReadString("/switches/sw1/flows-note"); s != "hello" {
		t.Errorf("server-side content = %q", s)
	}
	entries, err := c.ReadDir("/switches/sw1")
	if err != nil || len(entries) == 0 {
		t.Fatalf("readdir = %v %v", entries, err)
	}
	st, err := c.Stat("/switches/sw1")
	if err != nil || !st.IsDir() {
		t.Fatalf("stat = %+v %v", st, err)
	}
	// Errors keep their identity across the wire.
	if _, err := c.ReadFile("/does/not/exist"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("remote ENOENT = %v", err)
	}
	if err := c.Mkdir("/switches/sw1", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("remote EEXIST = %v", err)
	}
}

func TestRemoteSymlinkRenameGlobXattr(t *testing.T) {
	addr, _ := startServer(t)
	c := mount(t, addr, Strict)
	if err := c.Mkdir("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/switches/sw1/ports/1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/switches/sw2", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/switches/sw2/ports/2", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink("/switches/sw2/ports/2", "/switches/sw1/ports/1/peer"); err != nil {
		t.Fatal(err)
	}
	if tgt, err := c.Readlink("/switches/sw1/ports/1/peer"); err != nil || tgt != "/switches/sw2/ports/2" {
		t.Fatalf("readlink = %q %v", tgt, err)
	}
	// peer validation happens server-side.
	if err := c.Symlink("/hosts", "/switches/sw2/ports/2/peer"); !errors.Is(err, vfs.ErrInvalid) {
		t.Errorf("invalid peer over dfs = %v", err)
	}
	if err := c.Rename("/switches/sw1", "/switches/edge"); err != nil {
		t.Fatal(err)
	}
	if !c.IsDir("/switches/edge/ports/1") {
		t.Fatal("rename lost structure")
	}
	got, err := c.Glob("/switches/*/ports")
	if err != nil || len(got) != 2 {
		t.Fatalf("glob = %v %v", got, err)
	}
	if err := c.SetXattr("/switches/edge", "user.note", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.GetXattr("/switches/edge", "user.note"); err != nil || string(v) != "x" {
		t.Fatalf("xattr = %q %v", v, err)
	}
	names, err := c.ListXattr("/switches/edge")
	if err != nil || len(names) != 1 {
		t.Fatalf("listxattr = %v %v", names, err)
	}
	if err := c.RemoveXattr("/switches/edge", "user.note"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetXattr("/switches/edge", "user.note"); !errors.Is(err, vfs.ErrNoAttr) {
		t.Errorf("removed xattr = %v", err)
	}
}

func TestRemoteCredentialEnforcement(t *testing.T) {
	addr, y := startServer(t)
	// Server-side: a root-owned 0755 tree.
	if err := y.Root().Mkdir("/hosts/protected", 0o755); err != nil {
		t.Fatal(err)
	}
	alice, err := Mount(addr, vfs.Cred{UID: 1000, GID: 1000}, Strict)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	if err := alice.Mkdir("/hosts/protected/x", 0o755); !errors.Is(err, vfs.ErrAccess) {
		t.Errorf("alice remote mkdir = %v", err)
	}
}

func TestRemoteWatchStreamsEvents(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Strict)
	w, err := c.AddWatch("/switches", vfs.OpCreate|vfs.OpWrite, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// A change made locally on the server is observed remotely — this is
	// what lets a remote app react to the master's state.
	if err := y.Root().Mkdir("/switches/sw9", 0o755); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w.C:
		if ev.Op != vfs.OpCreate || ev.Path != "/switches/sw9" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no remote event")
	}
}

func TestEventualConsistencyFlushBarrier(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Eventual)
	// Eventual writes return immediately; a Flush barrier makes them
	// durable and visible.
	for i := 0; i < 50; i++ {
		if err := c.WriteString(fmt.Sprintf("/hosts/h%d", i), "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := y.Root().ReadDir("/hosts")
	if err != nil || len(entries) != 50 {
		t.Fatalf("after flush: %d entries %v", len(entries), err)
	}
	// Order is preserved: a create followed by a dependent write works.
	if err := c.Mkdir("/views/v1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/views/v1/owner", "tenant"); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if s, _ := y.Root().ReadString("/views/v1/owner"); s != "tenant" {
		t.Errorf("ordered writes broke: %q", s)
	}
}

func TestConsistencyOverridePerSubtree(t *testing.T) {
	addr, y := startServer(t)
	c := mount(t, addr, Eventual)
	if err := c.Mkdir("/switches/critical", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Mark one subtree strict via the xattr mechanism (§6).
	if err := c.SetConsistency("/switches/critical", Strict); err != nil {
		t.Fatal(err)
	}
	// The xattr is persisted for other mounts to see.
	if v, err := y.Root().GetXattrString("/switches/critical", ConsistencyXattr); err != nil || v != "strict" {
		t.Fatalf("xattr = %q %v", v, err)
	}
	// A write inside the strict subtree is synchronous: visible without
	// Flush.
	if err := c.WriteString("/switches/critical/note", "now"); err != nil {
		t.Fatal(err)
	}
	if s, _ := y.Root().ReadString("/switches/critical/note"); s != "now" {
		t.Errorf("strict write lagged: %q", s)
	}
}

func TestParseConsistency(t *testing.T) {
	if m, err := ParseConsistency("eventual"); err != nil || m != Eventual {
		t.Errorf("eventual = %v %v", m, err)
	}
	if m, err := ParseConsistency("strict"); err != nil || m != Strict {
		t.Errorf("strict = %v %v", m, err)
	}
	if _, err := ParseConsistency("bogus"); err == nil {
		t.Error("bogus must fail")
	}
	if Strict.String() != "strict" || Eventual.String() != "eventual" {
		t.Error("string forms")
	}
}

func TestDistributedFlowWriteThroughMount(t *testing.T) {
	// The §6 proof of concept: a remote machine writes a flow through the
	// distributed file system; the master's flow directory updates.
	addr, y := startServer(t)
	c := mount(t, addr, Strict)
	if err := c.Mkdir("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/switches/sw1/flows/remote-flow", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/switches/sw1/flows/remote-flow/match.tp_dst", "80\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/switches/sw1/flows/remote-flow/match.dl_type", "0x0800\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/switches/sw1/flows/remote-flow/action.out", "2\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/switches/sw1/flows/remote-flow/priority", "10\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/switches/sw1/flows/remote-flow/version", "1\n"); err != nil {
		t.Fatal(err)
	}
	spec, err := yancfs.ReadFlow(y.Root(), "/switches/sw1/flows/remote-flow")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Match.Has(openflow.FieldTPDst) || spec.Match.TPDst != 80 || spec.Priority != 10 {
		t.Errorf("remote flow = %+v", spec)
	}
	v, err := yancfs.FlowVersion(y.Root(), "/switches/sw1/flows/remote-flow")
	if err != nil || v != 1 {
		t.Errorf("version = %d %v", v, err)
	}
}

func TestMultipleMountsSeeEachOther(t *testing.T) {
	addr, _ := startServer(t)
	c1 := mount(t, addr, Strict)
	c2 := mount(t, addr, Strict)
	if err := c1.WriteString("/hosts/shared", "from-c1"); err != nil {
		t.Fatal(err)
	}
	if s, err := c2.ReadString("/hosts/shared"); err != nil || s != "from-c1" {
		t.Fatalf("cross-mount read = %q %v", s, err)
	}
	// Watches on one mount see writes from the other.
	w, err := c2.AddWatch("/hosts", vfs.OpWrite, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := c1.WriteString("/hosts/shared", "again"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w.C:
		if ev.Path != "/hosts/shared" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no cross-mount event")
	}
}

func TestConcurrentMountWrites(t *testing.T) {
	addr, y := startServer(t)
	const workers = 4
	const each = 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		c := mount(t, addr, Strict)
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				path := fmt.Sprintf("/hosts/w%d-%d", i, j)
				if err := c.WriteString(path, "x"); err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	entries, err := y.Root().ReadDir("/hosts")
	if err != nil || len(entries) != workers*each {
		t.Fatalf("entries = %d %v", len(entries), err)
	}
}

func TestMountClosedErrors(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Mount(addr, vfs.Root, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteString("/x", "y"); !errors.Is(err, ErrClosed) && err == nil {
		t.Errorf("write after close = %v", err)
	}
	// Double close is safe.
	if err := c.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(y.VFS())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Mount(addr, vfs.Root, Strict)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	// Calls now fail rather than hang.
	done := make(chan error, 1)
	go func() { _, err := c.ReadFile("/x"); done <- err }()
	select {
	case err := <-done:
		if err == nil {
			t.Error("expected error after server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call hung after server close")
	}
}
