package dfs

import "sync/atomic"

// ClientStats is a snapshot of one mount's health, the source for the
// controller's .proc/dfs/{rpc,queue,reconnects} files.
type ClientStats struct {
	Calls        uint64 // synchronous RPCs attempted
	Errors       uint64 // RPCs that returned an error (incl. transport)
	Timeouts     uint64 // RPCs that hit CallTimeout
	Reconnects   uint64 // successful remounts after a lost connection
	Queued       uint64 // eventual writes accepted into the queue
	Flushed      uint64 // eventual writes applied on the server
	QueueRejects uint64 // eventual writes refused with ErrQueueFull
	QueueDepth   int    // eventual writes waiting right now
	QueueCap     int    // queue bound (Options.MaxQueue)
	Connected    bool   // transport currently up

	Failovers      uint64 // remounts that landed on a different replica address
	ReplayedWrites uint64 // seq-stamped writes re-sent after a failover or redirect
}

// clientCounters is the live atomic form embedded in Client.
type clientCounters struct {
	calls, errors, timeouts, reconnects atomic.Uint64
	queued, flushed, queueRejects       atomic.Uint64
	failovers, replayedWrites           atomic.Uint64
}

// Stats snapshots the mount's counters and queue gauges.
func (c *Client) Stats() ClientStats {
	s := ClientStats{
		Calls:        c.counters.calls.Load(),
		Errors:       c.counters.errors.Load(),
		Timeouts:     c.counters.timeouts.Load(),
		Reconnects:   c.counters.reconnects.Load(),
		Queued:       c.counters.queued.Load(),
		Flushed:      c.counters.flushed.Load(),
		QueueRejects: c.counters.queueRejects.Load(),
		QueueCap:     c.opts.MaxQueue,
		Connected:    c.state.Load() == stateUp,

		Failovers:      c.counters.failovers.Load(),
		ReplayedWrites: c.counters.replayedWrites.Load(),
	}
	c.queueMu.Lock()
	s.QueueDepth = len(c.queue)
	c.queueMu.Unlock()
	return s
}

// Addr returns the server address this mount currently points at; on a
// failover mount it moves as the mount follows the leader.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// ServerStats is a snapshot of an export's request handling, the source
// for the .proc/dfs/rpc file on the serving controller.
type ServerStats struct {
	Sessions uint64 // connections accepted over the server's lifetime
	Requests uint64 // requests handled (batch sub-requests included)
	Errors   uint64 // requests answered with an error
	Watches  uint64 // watch registrations
	PerOp    map[string]uint64
}

// serverCounters is the live atomic form embedded in Server.
type serverCounters struct {
	sessions, requests, errors, watches atomic.Uint64
	perOp                               [opNoop + 1]atomic.Uint64
}

// opNames maps wire opcodes to the names ServerStats.PerOp reports.
var opNames = [...]string{
	opMkdir:         "mkdir",
	opMkdirAll:      "mkdirall",
	opWriteFile:     "write",
	opAppendFile:    "append",
	opReadFile:      "read",
	opRemove:        "remove",
	opRemoveAll:     "removeall",
	opRename:        "rename",
	opSymlink:       "symlink",
	opReadlink:      "readlink",
	opLink:          "link",
	opReadDir:       "readdir",
	opStat:          "stat",
	opLstat:         "lstat",
	opChmod:         "chmod",
	opChown:         "chown",
	opSetXattr:      "setxattr",
	opGetXattr:      "getxattr",
	opListXattr:     "listxattr",
	opRemoveXattr:   "removexattr",
	opWatch:         "watch",
	opUnwatch:       "unwatch",
	opGlob:          "glob",
	opBatch:         "batch",
	opAppendEntries: "appendentries",
	opRequestVote:   "requestvote",
	opNoop:          "noop",
}

// Stats snapshots the server's counters.
func (s *Server) Stats() ServerStats {
	out := ServerStats{
		Sessions: s.counters.sessions.Load(),
		Requests: s.counters.requests.Load(),
		Errors:   s.counters.errors.Load(),
		Watches:  s.counters.watches.Load(),
		PerOp:    make(map[string]uint64),
	}
	for op, name := range opNames {
		if n := s.counters.perOp[op].Load(); n > 0 {
			out.PerOp[name] = n
		}
	}
	return out
}

// countRequest records one handled request and its outcome.
func (s *Server) countRequest(op int, failed bool) {
	s.counters.requests.Add(1)
	if op >= 0 && op < len(s.counters.perOp) {
		s.counters.perOp[op].Add(1)
	}
	if failed {
		s.counters.errors.Add(1)
	}
	if op == opWatch && !failed {
		s.counters.watches.Add(1)
	}
}
