package dfs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestStressConcurrentMounts pins the server-side concurrency contract:
// each mount is served by its own goroutine, so with the sharded VFS
// locking, ops from different mounts run genuinely in parallel — they
// must all make progress against each other, including structural
// mutations racing with reads over the same subtrees, with no deadlock
// and no lost writes. Runs in the ci.sh Stress|Chaos -race battery.
func TestStressConcurrentMounts(t *testing.T) {
	addr, y := startServer(t)
	const mounts = 8
	const perMount = 60

	clients := make([]*Client, mounts)
	for i := range clients {
		clients[i] = mount(t, addr, Strict)
	}
	if err := clients[0].MkdirAll("/shared", 0o755); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, mounts)
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(id int, c *Client) {
			defer wg.Done()
			own := fmt.Sprintf("/m%d", id)
			if err := c.MkdirAll(own, 0o755); err != nil {
				done <- err
				return
			}
			for n := 0; n < perMount; n++ {
				// Private subtree: every write must survive.
				if err := c.WriteString(fmt.Sprintf("%s/f%d", own, n), "x"); err != nil {
					done <- fmt.Errorf("mount %d write %d: %w", id, n, err)
					return
				}
				// Shared subtree: structural churn from all mounts at once.
				p := fmt.Sprintf("/shared/m%d-%d", id, n)
				if err := c.Mkdir(p, 0o755); err != nil {
					done <- fmt.Errorf("mount %d mkdir %s: %w", id, p, err)
					return
				}
				if _, err := c.ReadDir("/shared"); err != nil {
					done <- fmt.Errorf("mount %d readdir: %w", id, err)
					return
				}
				if n%2 == 0 {
					if err := c.Remove(p); err != nil {
						done <- fmt.Errorf("mount %d remove %s: %w", id, p, err)
						return
					}
				}
			}
			done <- nil
		}(i, c)
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(120 * time.Second):
		t.Fatal("concurrent mounts deadlocked")
	}
	close(done)
	for err := range done {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every private write landed on the server exactly as sent.
	p := y.Root()
	for i := 0; i < mounts; i++ {
		ents, err := p.ReadDir(fmt.Sprintf("/m%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != perMount {
			t.Fatalf("mount %d: %d files on server, want %d", i, len(ents), perMount)
		}
	}
	// Shared subtree holds exactly the odd-numbered survivors.
	ents, err := p.ReadDir("/shared")
	if err != nil {
		t.Fatal(err)
	}
	if want := mounts * perMount / 2; len(ents) != want {
		t.Fatalf("/shared: %d entries, want %d", len(ents), want)
	}
}
