package libyanc

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// poSeq numbers staged packet-out messages so directory names are unique
// and ordered across the process (same discipline as the packet-in
// spool's eventSeq).
var poSeq atomic.Uint64

// PacketOut sends one frame out of any number of switches with exactly
// one staged copy of the payload: the head spec and frame are written
// once into the region's event spool, hard-linked into every target
// switch's pout/ queue, and unlinked from the spool — all in one
// transaction — then each switch's doorbell is rung so the driver
// drains the queue, consuming the frame by reference
// (vfs.ReadFileShared). The cost of fanning a frame out to N switches
// is N links plus N tiny doorbell writes, independent of frame size.
//
// head is the same spec line the packet_out control file takes:
// "out=<port>[,<more actions>] [in_port=<n>] [buffer_id=<id>]". All
// switch paths must live in the same region (they share one spool).
func (c *Client) PacketOut(switchPaths []string, head string, frame []byte) error {
	if len(switchPaths) == 0 {
		return nil
	}
	if _, err := openflow.ParsePacketOutSpec(head); err != nil {
		return err
	}
	// <region>/switches/<name> → region.
	region := vfs.Dir(vfs.Dir(vfs.Clean(switchPaths[0])))
	spool := vfs.Join(region, yancfs.DirEvents, yancfs.SpoolDir)
	seq := poSeq.Add(1)
	name := yancfs.PacketOutName(seq)
	stage := vfs.Join(spool, name)
	return c.y.VFS().WithTx(func(tx *vfs.Tx) error {
		// Validate every target BEFORE staging anything: WithTx has no
		// rollback, so a missing switch discovered after the WriteTree
		// would strand the staged frame in the spool.
		dsts := make([]string, len(switchPaths))
		for i, sw := range switchPaths {
			pout := vfs.Join(sw, yancfs.DirPacketOut)
			if !tx.Exists(sw) {
				return fmt.Errorf("libyanc: packet_out: no switch %s: %w", sw, vfs.ErrNotExist)
			}
			if !tx.Exists(pout) {
				if err := tx.Mkdir(pout, 0o755, 0, 0); err != nil {
					return err
				}
			}
			dsts[i] = vfs.Join(pout, name)
		}
		if !tx.Exists(spool) {
			if err := tx.Mkdir(spool, 0o700, 0, 0); err != nil {
				return err
			}
		}
		files := []vfs.FileData{
			{Name: yancfs.PacketOutHead, Data: []byte(head + "\n")},
			{Name: yancfs.PacketOutFrame, Data: frame},
		}
		if err := tx.WriteTree(stage, files, 0o755, 0o444, 0, 0); err != nil {
			return err
		}
		linked := make([]bool, len(dsts))
		if err := tx.LinkDirFanout(stage, dsts, 0o755, 0, 0, func(i int) { linked[i] = true }); err != nil {
			return err
		}
		// Unlink the staging entry: the head and frame live on through
		// the per-switch links, nothing is stranded in the spool.
		if err := tx.Remove(stage); err != nil {
			return err
		}
		bell := []byte(strconv.FormatUint(seq, 10) + "\n")
		for i, sw := range switchPaths {
			if !linked[i] {
				continue
			}
			p := vfs.Join(sw, yancfs.DirPacketOut, yancfs.FileDoorbell)
			if err := tx.WriteFile(p, bell, 0o644, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
}
