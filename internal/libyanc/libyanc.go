// Package libyanc is the fastpath library of §8.1. The plain yanc API is
// file I/O: writing a flow costs one "system call" (a counted VFS entry
// point) per field, and pushing flows to thousands of switches costs tens
// of thousands of such calls. libyanc provides
//
//   - atomic, batched flow creation: an entire batch of flows across any
//     number of switches commits under a single tree-lock acquisition and
//     a single event flush, without any per-field call;
//   - a zero-copy packet-in ring: the driver publishes packet buffers by
//     reference and any number of applications consume them without the
//     event-directory copies of §3.5.
//
// The result is bit-for-bit the same file-system state and the same
// driver behaviour — only the cost changes, which is exactly what the
// benchmarks E12/E13 measure.
package libyanc

import (
	"sync"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// Client is a fastpath handle onto one yanc file system.
type Client struct {
	y *yancfs.FS
}

// New creates a fastpath client.
func New(y *yancfs.FS) *Client { return &Client{y: y} }

// PutFlow atomically writes and commits one complete flow.
func (c *Client) PutFlow(flowPath string, spec yancfs.FlowSpec) (uint64, error) {
	var version uint64
	err := c.y.VFS().WithTx(func(tx *vfs.Tx) error {
		v, err := c.y.PutFlowTx(tx, flowPath, spec)
		version = v
		return err
	})
	return version, err
}

// Batch accumulates flow writes for a single atomic commit.
type Batch struct {
	client  *Client
	entries []batchEntry
}

type batchEntry struct {
	path string
	spec yancfs.FlowSpec
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch { return &Batch{client: c} }

// Put schedules a flow write. flowPath is the flow directory path (e.g.
// /switches/sw7/flows/f1).
func (b *Batch) Put(flowPath string, spec yancfs.FlowSpec) *Batch {
	b.entries = append(b.entries, batchEntry{path: flowPath, spec: spec})
	return b
}

// Len reports the number of scheduled writes.
func (b *Batch) Len() int { return len(b.entries) }

// Reset discards every scheduled write, making the batch reusable. A
// successful Commit resets implicitly; Reset exists for abandoning a
// failed or partially-built batch.
func (b *Batch) Reset() { b.entries = b.entries[:0] }

// Commit applies every scheduled write under one lock acquisition and
// one event flush.
//
// Retry contract: on success the batch is reset, so committing again is
// a no-op rather than a double-apply. On failure the entries are
// RETAINED for a retry — but there is no rollback: entries that already
// applied before the failing one have landed, and a retry re-applies
// the whole batch (idempotent in content, though each re-applied flow's
// version is bumped again). Call Reset to abandon a failed batch
// instead.
func (b *Batch) Commit() error {
	if len(b.entries) == 0 {
		return nil
	}
	err := b.client.y.VFS().WithTx(func(tx *vfs.Tx) error {
		for _, e := range b.entries {
			if _, err := b.client.y.PutFlowTx(tx, e.path, e.spec); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		b.Reset()
	}
	return err
}

// PacketInMsg is one fastpath packet-in: the switch it came from plus the
// message, shared by reference among all consumers (zero copy).
type PacketInMsg struct {
	Switch string
	PI     *openflow.PacketIn
}

// Ring is a single-producer multi-consumer ring buffer for packet-in
// messages. Slow consumers are lapped and observe a drop count rather
// than stalling the producer, mirroring the shared-memory design libyanc
// proposes for "efficient, zero-copy passing of bulk data".
type Ring struct {
	mu    sync.Mutex
	cond  *sync.Cond
	slots []PacketInMsg
	seq   uint64 // next sequence to be written
	close bool
}

// NewRing creates a ring with the given capacity (rounded up to 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	r := &Ring{slots: make([]PacketInMsg, capacity)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Publish appends a message, overwriting the oldest slot when full.
func (r *Ring) Publish(m PacketInMsg) {
	r.mu.Lock()
	r.slots[r.seq%uint64(len(r.slots))] = m
	r.seq++
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Close wakes all blocked cursors; subsequent Next calls return ok=false
// once drained.
func (r *Ring) Close() {
	r.mu.Lock()
	r.close = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Cursor is one consumer's position in the ring.
type Cursor struct {
	ring    *Ring
	next    uint64
	Dropped uint64 // messages lost to lapping
}

// NewCursor starts a consumer at the current head (it sees only messages
// published after this call).
func (r *Ring) NewCursor() *Cursor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &Cursor{ring: r, next: r.seq}
}

// Next returns the next message. With block=true it waits for one; with
// block=false it returns ok=false immediately when none is pending. If
// the consumer was lapped, Dropped is advanced and reading resumes at the
// oldest retained message.
func (c *Cursor) Next(block bool) (PacketInMsg, bool) {
	r := c.ring
	r.mu.Lock()
	defer r.mu.Unlock()
	for c.next == r.seq {
		if r.close || !block {
			return PacketInMsg{}, false
		}
		r.cond.Wait()
	}
	cap64 := uint64(len(r.slots))
	if r.seq-c.next > cap64 {
		c.Dropped += r.seq - c.next - cap64
		c.next = r.seq - cap64
	}
	m := r.slots[c.next%cap64]
	c.next++
	return m, true
}

// Pending reports how many messages are ready for this cursor.
func (c *Cursor) Pending() int {
	c.ring.mu.Lock()
	defer c.ring.mu.Unlock()
	d := c.ring.seq - c.next
	if d > uint64(len(c.ring.slots)) {
		d = uint64(len(c.ring.slots))
	}
	return int(d)
}
