package libyanc

import (
	"strings"
	"sync"
	"testing"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

func newY(t *testing.T) *yancfs.FS {
	t.Helper()
	y, err := yancfs.New()
	if err != nil {
		t.Fatal(err)
	}
	return y
}

func TestPutFlowMatchesFileIOLayout(t *testing.T) {
	// The fastpath — both the one-shot PutFlow and the submission ring —
	// must produce exactly the layout WriteFlow produces.
	yFast, ySlow, yRing := newY(t), newY(t), newY(t)
	for _, y := range []*yancfs.FS{yFast, ySlow, yRing} {
		if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22,nw_src=10.0.0.0/8")
	actions, _ := openflow.ParseActions("set_nw_tos=8,out=3")
	spec := yancfs.FlowSpec{Match: m, Priority: 77, IdleTimeout: 5, HardTimeout: 50, Cookie: 9, Actions: actions}

	c := New(yFast)
	v, err := c.PutFlow("/switches/sw1/flows/ssh", spec)
	if err != nil || v != 1 {
		t.Fatalf("PutFlow = %d %v", v, err)
	}
	if _, err := yancfs.WriteFlow(ySlow.Root(), "/switches/sw1/flows/ssh", spec); err != nil {
		t.Fatal(err)
	}
	r := New(yRing).NewFlowRing(RingConfig{})
	if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/ssh", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var fast, slow, ring []string
	collect := func(y *yancfs.FS, out *[]string) {
		_ = y.Root().Walk("/switches/sw1/flows/ssh", func(path string, st vfs.Stat) error {
			line := path
			if st.Kind == vfs.KindFile {
				b, _ := y.Root().ReadFile(path)
				line += "=" + string(b)
			}
			*out = append(*out, line)
			return nil
		})
	}
	collect(yFast, &fast)
	collect(ySlow, &slow)
	collect(yRing, &ring)
	if len(fast) != len(slow) || len(ring) != len(slow) {
		t.Fatalf("layouts differ:\nfast %v\nslow %v\nring %v", fast, slow, ring)
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Errorf("entry %d: fast %q slow %q", i, fast[i], slow[i])
		}
		if ring[i] != slow[i] {
			t.Errorf("entry %d: ring %q slow %q", i, ring[i], slow[i])
		}
	}
	// Both round-trip to the same spec.
	sf, err := yancfs.ReadFlow(yFast.Root(), "/switches/sw1/flows/ssh")
	if err != nil {
		t.Fatal(err)
	}
	if !sf.Match.Equal(spec.Match) || sf.Priority != 77 || sf.Cookie != 9 {
		t.Errorf("fast read back = %+v", sf)
	}
}

func TestPutFlowRewriteClearsStaleFields(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	c := New(y)
	m1, _ := openflow.ParseMatch("tp_dst=22,dl_type=0x0800,nw_proto=6")
	if _, err := c.PutFlow("/switches/sw1/flows/f", yancfs.FlowSpec{Match: m1, Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}); err != nil {
		t.Fatal(err)
	}
	m2, _ := openflow.ParseMatch("in_port=4")
	v, err := c.PutFlow("/switches/sw1/flows/f", yancfs.FlowSpec{Match: m2, Priority: 2, Actions: []openflow.Action{openflow.Output(2)}})
	if err != nil || v != 2 {
		t.Fatalf("rewrite = %d %v", v, err)
	}
	p := y.Root()
	if p.Exists("/switches/sw1/flows/f/match.tp_dst") {
		t.Error("stale match file survived")
	}
	got, err := yancfs.ReadFlow(p, "/switches/sw1/flows/f")
	if err != nil || !got.Match.Equal(m2) {
		t.Errorf("read back = %+v %v", got, err)
	}
}

func TestBatchCommitAtomicity(t *testing.T) {
	y := newY(t)
	p := y.Root()
	for _, sw := range []string{"sw1", "sw2", "sw3"} {
		if _, err := yancfs.CreateSwitch(p, "/", sw); err != nil {
			t.Fatal(err)
		}
	}
	// A watcher must observe the whole batch in one event flush: no
	// interleaved observation point where only part of the batch exists.
	w, err := p.AddWatch("/switches", vfs.OpWrite, vfs.Recursive(), vfs.BufferSize(8192))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c := New(y)
	b := c.NewBatch()
	m, _ := openflow.ParseMatch("dl_type=0x0800")
	for _, sw := range []string{"sw1", "sw2", "sw3"} {
		for i := 0; i < 5; i++ {
			b.Put("/switches/"+sw+"/flows/f"+string(rune('0'+i)),
				yancfs.FlowSpec{Match: m, Priority: uint16(i), Actions: []openflow.Action{openflow.Output(1)}})
		}
	}
	if b.Len() != 15 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, sw := range []string{"sw1", "sw2", "sw3"} {
		names, err := yancfs.ListFlows(p, "/switches/"+sw)
		if err != nil || len(names) != 5 {
			t.Fatalf("%s flows = %v %v", sw, names, err)
		}
	}
	// All 15 version writes arrive.
	versions := 0
	deadline := time.After(time.Second)
	for versions < 15 {
		select {
		case ev := <-w.C:
			if vfs.Base(ev.Path) == "version" {
				versions++
			}
		case <-deadline:
			t.Fatalf("saw %d version writes", versions)
		}
	}
}

func TestBatchOpCountAdvantage(t *testing.T) {
	// The whole point of libyanc: the batch path must cost dramatically
	// fewer counted VFS calls than per-field file I/O (§8.1).
	yFast, ySlow := newY(t), newY(t)
	m, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6,tp_dst=22")
	spec := yancfs.FlowSpec{Match: m, Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}
	const flows = 50

	for _, y := range []*yancfs.FS{yFast, ySlow} {
		if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
			t.Fatal(err)
		}
	}
	slowBase := ySlow.VFS().Stats().Total()
	for i := 0; i < flows; i++ {
		if _, err := yancfs.WriteFlow(ySlow.Root(), "/switches/sw1/flows/f"+itoa(i), spec); err != nil {
			t.Fatal(err)
		}
	}
	slowOps := ySlow.VFS().Stats().Total() - slowBase

	fastBase := yFast.VFS().Stats().Total()
	b := New(yFast).NewBatch()
	for i := 0; i < flows; i++ {
		b.Put("/switches/sw1/flows/f"+itoa(i), spec)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	fastOps := yFast.VFS().Stats().Total() - fastBase

	if fastOps*10 > slowOps {
		t.Errorf("fastpath not ≥10x cheaper: fast=%d slow=%d counted ops", fastOps, slowOps)
	}
}

// TestBatchReuseAfterCommit is the regression for the Batch retry
// contract: a successful Commit resets the batch, so committing again
// is a no-op rather than a silent double-apply; a failed Commit retains
// the entries for a retry; Reset abandons them.
func TestBatchReuseAfterCommit(t *testing.T) {
	y := newY(t)
	p := y.Root()
	if _, err := yancfs.CreateSwitch(p, "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	m, _ := openflow.ParseMatch("dl_type=0x0800")
	spec := yancfs.FlowSpec{Match: m, Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}
	b := New(y).NewBatch()
	b.Put("/switches/sw1/flows/f", spec)
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("successful commit left %d entries queued", b.Len())
	}
	// Historically this re-applied the whole batch and bumped every
	// version; now it must be a no-op.
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if s, err := p.ReadString("/switches/sw1/flows/f/version"); err != nil || strings.TrimSpace(s) != "1" {
		t.Fatalf("version after double commit = %q, %v (double-apply regression)", s, err)
	}

	// A failed commit retains the entries so the caller can retry.
	b.Put("/switches/ghost/flows/f", spec)
	if err := b.Commit(); err == nil {
		t.Fatal("commit into a missing switch succeeded")
	}
	if b.Len() != 1 {
		t.Fatalf("failed commit kept %d entries, want 1", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("reset left %d entries", b.Len())
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("empty batch commit = %v", err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestRingBasicDelivery(t *testing.T) {
	r := NewRing(8)
	c1 := r.NewCursor()
	c2 := r.NewCursor()
	data := []byte{1, 2, 3}
	r.Publish(PacketInMsg{Switch: "sw1", PI: &openflow.PacketIn{Data: data}})
	for i, c := range []*Cursor{c1, c2} {
		m, ok := c.Next(false)
		if !ok || m.Switch != "sw1" {
			t.Fatalf("cursor %d: %+v %v", i, m, ok)
		}
		// Zero copy: both cursors share the same backing array.
		if &m.PI.Data[0] != &data[0] {
			t.Errorf("cursor %d copied the data", i)
		}
	}
	if _, ok := c1.Next(false); ok {
		t.Error("drained cursor returned a message")
	}
}

func TestRingLappingCountsDrops(t *testing.T) {
	r := NewRing(4)
	c := r.NewCursor()
	for i := 0; i < 10; i++ {
		r.Publish(PacketInMsg{PI: &openflow.PacketIn{TotalLen: uint16(i)}})
	}
	var got []uint16
	for {
		m, ok := c.Next(false)
		if !ok {
			break
		}
		got = append(got, m.PI.TotalLen)
	}
	if c.Dropped != 6 {
		t.Errorf("dropped = %d", c.Dropped)
	}
	if len(got) != 4 || got[0] != 6 || got[3] != 9 {
		t.Errorf("got = %v", got)
	}
}

func TestRingBlockingAndClose(t *testing.T) {
	r := NewRing(4)
	c := r.NewCursor()
	done := make(chan PacketInMsg, 1)
	go func() {
		m, ok := c.Next(true)
		if ok {
			done <- m
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	r.Publish(PacketInMsg{Switch: "late"})
	select {
	case m := <-done:
		if m.Switch != "late" {
			t.Errorf("got %+v", m)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked cursor never woke")
	}
	// Close wakes blocked consumers.
	c2 := r.NewCursor()
	woke := make(chan bool, 1)
	go func() {
		_, ok := c2.Next(true)
		woke <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	r.Close()
	select {
	case ok := <-woke:
		if ok {
			t.Error("closed ring returned a message")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not wake consumer")
	}
}

func TestRingConcurrentConsumers(t *testing.T) {
	r := NewRing(1024)
	const n = 500
	var wg sync.WaitGroup
	totals := make([]int, 4)
	for i := 0; i < 4; i++ {
		cur := r.NewCursor()
		wg.Add(1)
		go func(i int, cur *Cursor) {
			defer wg.Done()
			for {
				_, ok := cur.Next(true)
				if !ok {
					return
				}
				totals[i]++
			}
		}(i, cur)
	}
	for i := 0; i < n; i++ {
		r.Publish(PacketInMsg{PI: &openflow.PacketIn{}})
	}
	time.Sleep(50 * time.Millisecond)
	r.Close()
	wg.Wait()
	for i, tot := range totals {
		if tot != n {
			t.Errorf("consumer %d got %d/%d", i, tot, n)
		}
	}
}

// TestAllocRingPublishConsumeAllocFree is the dynamic half of the
// zero-copy ring's allocation contract. The static half is yancvet's
// hotalloc analyzer (DESIGN.md §11), which proves the driver's
// publish-side hot path can't allocate; this pin covers the steady-state
// Publish/Next cycle on the current toolchain, where messages move by
// slot assignment only. Keep both checks: the analyzer catches shapes,
// this catches codegen. (The FlowRing drainer is deliberately amortized
// — one claim buffer per ring — so only the packet-in ring pins to 0.)
func TestAllocRingPublishConsumeAllocFree(t *testing.T) {
	r := NewRing(8)
	c := r.NewCursor()
	msg := PacketInMsg{Switch: "sw1", PI: &openflow.PacketIn{}}
	allocs := testing.AllocsPerRun(100, func() {
		r.Publish(msg)
		if _, ok := c.Next(false); !ok {
			t.Fatal("published message not delivered")
		}
	})
	if allocs != 0 {
		t.Errorf("Publish/Next allocated %v times per run; want 0", allocs)
	}
}

func TestRingPending(t *testing.T) {
	r := NewRing(4)
	c := r.NewCursor()
	if c.Pending() != 0 {
		t.Error("fresh cursor pending != 0")
	}
	r.Publish(PacketInMsg{})
	r.Publish(PacketInMsg{})
	if c.Pending() != 2 {
		t.Errorf("pending = %d", c.Pending())
	}
	for i := 0; i < 10; i++ {
		r.Publish(PacketInMsg{})
	}
	if c.Pending() != 4 {
		t.Errorf("lapped pending = %d", c.Pending())
	}
}
