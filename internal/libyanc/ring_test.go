package libyanc

import (
	"errors"
	"sync"
	"testing"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

func ringSpec(t *testing.T) yancfs.FlowSpec {
	t.Helper()
	m, err := openflow.ParseMatch("dl_type=0x0800")
	if err != nil {
		t.Fatal(err)
	}
	return yancfs.FlowSpec{Match: m, Priority: 1, Actions: []openflow.Action{openflow.Output(1)}}
}

// newStalledRing builds a FlowRing WITHOUT starting its drainer, so a
// test can deterministically fill the SQ to capacity. Mirror of
// NewFlowRing minus the goroutine; release it later with
// `go r.drainer(n)`.
func newStalledRing(y *yancfs.FS, depth int) *FlowRing {
	r := &FlowRing{client: New(y), clock: time.Now, sq: make([]SQE, depth)}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	r.cqReady = sync.NewCond(&r.mu)
	return r
}

// TestFlowRingBulkCommitCompletionOrder pins the core ring contract:
// every submission gets exactly one commit completion, completions come
// back in submission order carrying the caller's tag, versions match
// what landed on disk, and the whole burst costs far fewer drains than
// entries (adaptive batching).
func TestFlowRingBulkCommitCompletionOrder(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	spec := ringSpec(t)
	r := New(y).NewFlowRing(RingConfig{SQDepth: 512})
	const n = 200
	for i := 0; i < n; i++ {
		if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/f" + itoa(i), Spec: spec, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e, ok := r.Reap(true)
		if !ok {
			t.Fatalf("reap %d: ring drained early", i)
		}
		if e.Tag != uint64(i) || e.Installed {
			t.Fatalf("completion %d out of order: %+v", i, e)
		}
		if e.Err != nil || e.Version != 1 {
			t.Fatalf("completion %d: version %d err %v", i, e.Version, e.Err)
		}
	}
	names, err := yancfs.ListFlows(y.Root(), "/switches/sw1")
	if err != nil || len(names) != n {
		t.Fatalf("flows on disk = %d %v", len(names), err)
	}
	st := r.Stats()
	if st.Submitted != n || st.Completed != n {
		t.Fatalf("stats = %+v", st)
	}
	if st.Drains == 0 || st.Drains >= n/4 {
		t.Errorf("adaptive batching missing: %d drains for %d entries", st.Drains, n)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/late", Spec: spec}); !errors.Is(err, ErrRingClosed) {
		t.Fatalf("submit after close = %v", err)
	}
}

// TestFlowRingSQWraparound pushes far more entries than the SQ holds
// through a tiny ring, so head/tail wrap the backing slice many times.
func TestFlowRingSQWraparound(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	spec := ringSpec(t)
	r := New(y).NewFlowRing(RingConfig{SQDepth: 8})
	const n = 100
	for i := 0; i < n; i++ {
		if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/f" + itoa(i), Spec: spec, Tag: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var tags []uint64
	for {
		e, ok := r.Reap(true)
		if !ok {
			break
		}
		tags = append(tags, e.Tag)
	}
	if len(tags) != n {
		t.Fatalf("reaped %d completions, want %d", len(tags), n)
	}
	for i, tag := range tags {
		if tag != uint64(i) {
			t.Fatalf("tag %d at position %d: FIFO broken across wraparound", tag, i)
		}
	}
	if names, err := yancfs.ListFlows(y.Root(), "/switches/sw1"); err != nil || len(names) != n {
		t.Fatalf("flows on disk = %d %v", len(names), err)
	}
}

// TestFlowRingFullBackpressure fills a drainer-less ring to capacity:
// TrySubmit must fail with ErrRingFull (not block, not drop), Submit
// must block, and both must make progress the moment the drainer starts.
func TestFlowRingFullBackpressure(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	spec := ringSpec(t)
	const depth = 4
	r := newStalledRing(y, depth)
	for i := 0; i < depth; i++ {
		if err := r.TrySubmit(SQE{Op: OpPut, Path: "/switches/sw1/flows/f" + itoa(i), Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.TrySubmit(SQE{Op: OpPut, Path: "/switches/sw1/flows/overflow", Spec: spec}); !errors.Is(err, ErrRingFull) {
		t.Fatalf("TrySubmit on a full ring = %v, want ErrRingFull", err)
	}
	blocked := make(chan error, 1)
	go func() {
		blocked <- r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/f" + itoa(depth), Spec: spec})
	}()
	select {
	case err := <-blocked:
		t.Fatalf("Submit returned %v while the ring was full and undrained", err)
	case <-time.After(20 * time.Millisecond):
	}
	go r.drainer(depth)
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drainer never released the blocked Submit")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if names, err := yancfs.ListFlows(y.Root(), "/switches/sw1"); err != nil || len(names) != depth+1 {
		t.Fatalf("flows on disk = %d %v", len(names), err)
	}
	if st := r.Stats(); st.Stalls < 2 {
		t.Errorf("stalls = %d, want at least the TrySubmit failure and the blocked Submit", st.Stalls)
	}
}

// TestFlowRingCloseWithInFlight closes the ring with a backlog still
// queued: Close must commit every accepted entry before returning, and
// the completions stay reapable afterwards.
func TestFlowRingCloseWithInFlight(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	spec := ringSpec(t)
	r := New(y).NewFlowRing(RingConfig{SQDepth: 256})
	const n = 64
	for i := 0; i < n; i++ {
		if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/f" + itoa(i), Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if names, err := yancfs.ListFlows(y.Root(), "/switches/sw1"); err != nil || len(names) != n {
		t.Fatalf("flows after close = %d %v", len(names), err)
	}
	reaped := 0
	for {
		_, ok := r.Reap(true)
		if !ok {
			break
		}
		reaped++
	}
	if reaped != n {
		t.Fatalf("reaped %d completions after close, want %d", reaped, n)
	}
	// Close is idempotent and still reports the (nil) first error.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlowRingPerEntryError pins the no-rollback contract: a failing
// entry carries its error in its own CQE, the rest of the batch still
// lands, and Flush/Close surface the first error.
func TestFlowRingPerEntryError(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	spec := ringSpec(t)
	r := New(y).NewFlowRing(RingConfig{})
	if err := r.Submit(SQE{Op: OpDelete, Path: "/switches/sw1/flows/ghost", Tag: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/real", Spec: spec, Tag: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Flush = %v, want the ghost delete's ErrNotExist", err)
	}
	var sawErr, sawOK bool
	for i := 0; i < 2; i++ {
		e, ok := r.Reap(true)
		if !ok {
			t.Fatal("ring drained early")
		}
		switch e.Tag {
		case 1:
			if !errors.Is(e.Err, vfs.ErrNotExist) {
				t.Fatalf("ghost delete CQE err = %v", e.Err)
			}
			sawErr = true
		case 2:
			if e.Err != nil || e.Version != 1 {
				t.Fatalf("put CQE = %+v", e)
			}
			sawOK = true
		}
	}
	if !sawErr || !sawOK {
		t.Fatalf("missing completions: err=%v ok=%v", sawErr, sawOK)
	}
	if !y.Root().Exists("/switches/sw1/flows/real/version") {
		t.Error("the failing entry aborted the rest of the batch")
	}
	if err := r.Close(); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Close = %v, want sticky first error", err)
	}
}

// TestFlowRingInstallCompletions wires InstallHook by hand (standing in
// for the driver) and checks that install feedback arrives as
// Installed=true completions keyed by path and version.
func TestFlowRingInstallCompletions(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	r := New(y).NewFlowRing(RingConfig{})
	if err := r.Submit(SQE{Op: OpPut, Path: "/switches/sw1/flows/f", Spec: ringSpec(t), Tag: 7}); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	hook := r.InstallHook()
	hook("/switches/sw1/flows/f", 1)
	commit, ok := r.Reap(true)
	if !ok || commit.Installed || commit.Tag != 7 {
		t.Fatalf("commit CQE = %+v %v", commit, ok)
	}
	inst, ok := r.Reap(true)
	if !ok || !inst.Installed || inst.Path != "/switches/sw1/flows/f" || inst.Version != 1 {
		t.Fatalf("install CQE = %+v %v", inst, ok)
	}
	if st := r.Stats(); st.Installed != 1 {
		t.Errorf("installed = %d", st.Installed)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStressFlowRingConcurrentSubmitters hammers one ring from several
// goroutines through a deliberately tiny SQ (constant wraparound and
// backpressure) while a reaper drains completions concurrently. Each
// submitter's completions must come back in that submitter's order —
// the FIFO guarantee callers key retries on. Runs in the -race leg.
func TestStressFlowRingConcurrentSubmitters(t *testing.T) {
	y := newY(t)
	if _, err := yancfs.CreateSwitch(y.Root(), "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	spec := ringSpec(t)
	r := New(y).NewFlowRing(RingConfig{SQDepth: 16, MaxBatch: 8})
	const (
		submitters = 4
		perG       = 200
	)
	done := make(chan map[uint64][]uint64, 1)
	go func() {
		perSub := make(map[uint64][]uint64)
		for {
			e, ok := r.Reap(true)
			if !ok {
				done <- perSub
				return
			}
			if e.Installed {
				continue
			}
			g := e.Tag >> 32
			perSub[g] = append(perSub[g], e.Tag&0xffffffff)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e := SQE{
					Op:   OpPut,
					Path: "/switches/sw1/flows/g" + itoa(g) + "f" + itoa(i),
					Spec: spec,
					Tag:  uint64(g)<<32 | uint64(i),
				}
				if err := r.Submit(e); err != nil {
					t.Errorf("submitter %d op %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	perSub := <-done
	total := 0
	for g := 0; g < submitters; g++ {
		seq := perSub[uint64(g)]
		total += len(seq)
		if len(seq) != perG {
			t.Fatalf("submitter %d: %d completions, want %d", g, len(seq), perG)
		}
		for i, v := range seq {
			if v != uint64(i) {
				t.Fatalf("submitter %d: completion %d has tag %d — per-submitter order broken", g, i, v)
			}
		}
	}
	if total != submitters*perG {
		t.Fatalf("total completions = %d", total)
	}
	if names, err := yancfs.ListFlows(y.Root(), "/switches/sw1"); err != nil || len(names) != submitters*perG {
		t.Fatalf("flows on disk = %d %v", len(names), err)
	}
}
