package libyanc

import (
	"errors"
	"sync"
	"time"

	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// The flow-mod submission/completion ring is the write-direction half of
// libyanc v2: the same move io_uring made against syscall-per-op I/O,
// applied to the E12 cost model (one counted VFS call per flow field,
// tens of thousands for a 1k-switch push). Callers submit flow-mod
// entries — put/modify/delete, any switch — into a bounded submission
// queue; a single drainer goroutine commits them in adaptive batches,
// each drain being ONE vfs.WithTx (one tree-lock acquisition, many
// version commits) and ONE watch-dispatch flush. A completion queue
// reports per-entry (version, err), and — when the driver's
// FlowInstalledHook is wired to InstallHook — a second, Installed=true
// completion per flow once the flow-mod actually reached the switch, so
// callers get end-to-end pipelining instead of fire-and-forget.

// Errors returned by ring submission.
var (
	// ErrRingFull is returned by TrySubmit when the submission queue is
	// at capacity (Submit blocks instead).
	ErrRingFull = errors.New("libyanc: submission ring full")
	// ErrRingClosed is returned once Close has been called.
	ErrRingClosed = errors.New("libyanc: ring closed")
)

// OpKind discriminates submission entries. A put of an existing flow
// path is a modify: the flow's fields are rewritten and its version
// bumped, exactly like the file-I/O path.
type OpKind uint8

const (
	// OpPut creates or rewrites a complete flow (PutFlowTx semantics).
	OpPut OpKind = iota
	// OpDelete removes the flow directory (DeleteFlow semantics).
	OpDelete
)

// SQE is one submission-queue entry.
type SQE struct {
	Op   OpKind
	Path string // flow directory path, e.g. /switches/sw7/flows/f1
	Spec yancfs.FlowSpec
	Tag  uint64 // opaque caller correlation value, echoed in the CQE
}

// CQE is one completion-queue entry. Every submitted SQE produces
// exactly one commit completion (Installed=false) once its batch's
// transaction has flushed; flows additionally produce an Installed=true
// completion when the driver reports the flow-mod on the wire (only if
// InstallHook is wired to the driver). Install completions carry no Tag:
// they are keyed by Path and Version.
type CQE struct {
	Tag       uint64
	Path      string
	Op        OpKind
	Version   uint64 // committed version (puts), 0 for deletes
	Err       error  // per-entry failure; the rest of the batch still lands
	Installed bool
}

// RingConfig tunes a FlowRing.
type RingConfig struct {
	// SQDepth bounds the submission queue (default 256). A full SQ
	// blocks Submit and fails TrySubmit — backpressure, not drops.
	SQDepth int
	// MaxBatch caps how many entries one drain commits under a single
	// transaction (default SQDepth). The drainer adapts below the cap:
	// it takes whatever backlog is present, so latency stays low when
	// the ring is lightly loaded and batches grow under pressure.
	MaxBatch int
	// Clock overrides the drain-latency time source (telemetry only).
	Clock func() time.Time
}

// FlowRing is the submission/completion ring pair. Create with
// NewFlowRing; all methods are safe for concurrent use. Entries complete
// in submission order (the SQ is FIFO and batches are committed and
// completed in order), so a put followed by a delete of the same path
// lands as put-then-delete.
type FlowRing struct {
	client *Client
	clock  func() time.Time

	mu       sync.Mutex
	notFull  *sync.Cond // submitters waiting for SQ space
	notEmpty *sync.Cond // drainer waiting for work
	cqReady  *sync.Cond // reapers and Flush waiting for progress

	sq         []SQE
	head, tail uint64 // SQ positions; len = tail-head, slot = pos%depth
	cq         []CQE
	inflight   int // entries claimed by the drainer, not yet completed
	closed     bool
	done       bool // drainer exited; no more commit completions
	firstErr   error

	// telemetry (guarded by mu)
	submitted  uint64
	completed  uint64
	installed  uint64
	drains     uint64
	stalls     uint64 // Submit blocked or TrySubmit failed on a full SQ
	batchMax   int
	drainNanos uint64
}

// NewFlowRing creates the ring and starts its drainer goroutine. Close
// it when done: Close drains remaining submissions, then stops the
// drainer.
func (c *Client) NewFlowRing(cfg RingConfig) *FlowRing {
	if cfg.SQDepth <= 0 {
		cfg.SQDepth = 256
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > cfg.SQDepth {
		cfg.MaxBatch = cfg.SQDepth
	}
	r := &FlowRing{
		client: c,
		clock:  cfg.Clock,
		sq:     make([]SQE, cfg.SQDepth),
	}
	if r.clock == nil {
		r.clock = time.Now
	}
	r.notFull = sync.NewCond(&r.mu)
	r.notEmpty = sync.NewCond(&r.mu)
	r.cqReady = sync.NewCond(&r.mu)
	go r.drainer(cfg.MaxBatch)
	return r
}

// Submit appends one entry to the submission queue, blocking while the
// ring is full (backpressure). It returns ErrRingClosed after Close.
func (r *FlowRing) Submit(e SQE) error {
	r.mu.Lock()
	for r.tail-r.head == uint64(len(r.sq)) && !r.closed {
		r.stalls++
		r.notFull.Wait()
	}
	return r.submitLocked(e)
}

// TrySubmit is the non-blocking Submit: it returns ErrRingFull instead
// of waiting for space.
func (r *FlowRing) TrySubmit(e SQE) error {
	r.mu.Lock()
	if r.tail-r.head == uint64(len(r.sq)) && !r.closed {
		r.stalls++
		r.mu.Unlock()
		return ErrRingFull
	}
	return r.submitLocked(e)
}

// submitLocked finishes a submission; the caller holds mu, which is
// released here.
func (r *FlowRing) submitLocked(e SQE) error {
	if r.closed {
		r.mu.Unlock()
		return ErrRingClosed
	}
	r.sq[r.tail%uint64(len(r.sq))] = e
	r.tail++
	r.submitted++
	r.mu.Unlock()
	r.notEmpty.Signal()
	return nil
}

// Reap pops the oldest completion. With block=true it waits for one; it
// returns ok=false when none is pending (block=false), or when the ring
// is closed, fully drained, and the CQ is empty. Install completions
// that arrive from the driver after that point are dropped.
func (r *FlowRing) Reap(block bool) (CQE, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.cq) == 0 {
		if !block || r.done {
			return CQE{}, false
		}
		r.cqReady.Wait()
	}
	e := r.cq[0]
	r.cq = r.cq[1:]
	return e, true
}

// Flush blocks until every entry submitted before the call has its
// commit completion posted (installed completions are asynchronous
// driver feedback and are not waited for), then returns the first
// error any entry has hit since the ring was created, nil if none.
// Completions stay reapable after Flush returns.
func (r *FlowRing) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for (r.tail != r.head || r.inflight > 0) && !r.done {
		r.cqReady.Wait()
	}
	return r.firstErr
}

// Close stops accepting submissions, waits for the drainer to commit
// everything already submitted, and returns the first error seen (like
// Flush). Pending completions remain reapable; blocked Reap calls wake
// with ok=false once the CQ is empty.
func (r *FlowRing) Close() error {
	r.mu.Lock()
	if r.closed {
		for !r.done {
			r.cqReady.Wait()
		}
		err := r.firstErr
		r.mu.Unlock()
		return err
	}
	r.closed = true
	r.mu.Unlock()
	// Wake everyone: submitters fail with ErrRingClosed, the drainer
	// sees closed and exits after emptying the SQ.
	r.notFull.Broadcast()
	r.notEmpty.Broadcast()
	r.mu.Lock()
	for !r.done {
		r.cqReady.Wait()
	}
	err := r.firstErr
	r.mu.Unlock()
	return err
}

// InstallHook returns a function with the driver's FlowInstalledHook
// signature; wiring it makes the ring post an Installed=true completion
// when a committed flow actually reaches its switch, closing the
// submit → commit → install pipeline. The hook runs on driver mux
// workers, so it only appends to the CQ.
func (r *FlowRing) InstallHook() func(flowPath string, version uint64) {
	return func(flowPath string, version uint64) {
		r.mu.Lock()
		if r.done && len(r.cq) == 0 {
			// Late driver feedback after Close+drain; nobody is reaping.
			r.mu.Unlock()
			return
		}
		r.installed++
		r.cq = append(r.cq, CQE{Path: flowPath, Op: OpPut, Version: version, Installed: true})
		r.mu.Unlock()
		r.cqReady.Broadcast()
	}
}

// drainer is the single consumer of the SQ. Each iteration claims the
// whole backlog (capped at maxBatch), commits it under one transaction,
// and posts one completion per entry. Per-entry failures are recorded in
// their CQEs and do not abort the rest of the batch — there is no
// rollback in vfs, so a failed entry may leave a partially-written,
// uncommitted flow directory (no version file, so drivers ignore it).
//
//yancvet:hotalloc
func (r *FlowRing) drainer(maxBatch int) {
	batch := make([]SQE, 0, maxBatch) //yancvet:alloc one claim buffer per ring lifetime, reused every drain
	for {
		r.mu.Lock()
		for r.tail == r.head && !r.closed {
			r.notEmpty.Wait()
		}
		if r.tail == r.head && r.closed {
			r.done = true
			r.mu.Unlock()
			r.cqReady.Broadcast()
			return
		}
		n := int(r.tail - r.head)
		if n > maxBatch {
			n = maxBatch
		}
		batch = batch[:0]
		for i := 0; i < n; i++ {
			batch = append(batch, r.sq[r.head%uint64(len(r.sq))])
			r.sq[r.head%uint64(len(r.sq))] = SQE{} // drop references
			r.head++
		}
		r.inflight += n
		r.mu.Unlock()
		r.notFull.Broadcast()

		start := r.clock()
		cqes := r.commit(batch)
		elapsed := r.clock().Sub(start)

		r.mu.Lock()
		r.drains++
		r.drainNanos += uint64(elapsed)
		if n > r.batchMax {
			r.batchMax = n
		}
		r.inflight -= n
		r.completed += uint64(len(cqes))
		r.cq = append(r.cq, cqes...)
		if r.firstErr == nil {
			for _, e := range cqes {
				if e.Err != nil {
					r.firstErr = e.Err
					break
				}
			}
		}
		r.mu.Unlock()
		r.cqReady.Broadcast()
	}
}

// commit applies one batch under a single transaction: one tree-lock
// acquisition, one event flush, many version files.
func (r *FlowRing) commit(batch []SQE) []CQE {
	cqes := make([]CQE, len(batch)) //yancvet:alloc one completion buffer per drain, handed off to the CQ
	y := r.client.y
	//yancvet:alloc one transaction and closure per drain, amortized over the whole batch
	err := y.VFS().WithTx(func(tx *vfs.Tx) error {
		for i, e := range batch {
			cqes[i] = CQE{Tag: e.Tag, Path: e.Path, Op: e.Op}
			switch e.Op {
			case OpDelete:
				cqes[i].Err = tx.Remove(e.Path) //yancvet:alloc tree mutation allocates by design; the render path is what is pinned
			default:
				//yancvet:alloc flow write allocates inodes by design; its render path is pinned zero-alloc
				v, perr := y.PutFlowTx(tx, e.Path, e.Spec)
				cqes[i].Version = v
				cqes[i].Err = perr
			}
		}
		return nil
	})
	if err != nil {
		// Transaction-level failure (cannot happen today: the fn above
		// returns nil); surface it on every entry that had none.
		for i := range cqes {
			if cqes[i].Err == nil {
				cqes[i].Err = err
			}
		}
	}
	return cqes
}

// RingStats is a telemetry snapshot, published as /.proc/libyanc files.
type RingStats struct {
	Submitted  uint64 // SQEs accepted
	Completed  uint64 // commit completions posted
	Installed  uint64 // install completions posted by the driver hook
	Drains     uint64 // transactions committed
	Stalls     uint64 // submissions that hit a full SQ
	BatchMax   int    // largest single-drain batch
	DrainNanos uint64 // cumulative wall time inside commit transactions
	SQLen      int    // entries currently queued
	SQCap      int
	CQLen      int // completions awaiting reap
	InFlight   int // entries claimed by the drainer, not yet completed
	Closed     bool
}

// Stats snapshots the ring counters.
func (r *FlowRing) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RingStats{
		Submitted:  r.submitted,
		Completed:  r.completed,
		Installed:  r.installed,
		Drains:     r.drains,
		Stalls:     r.stalls,
		BatchMax:   r.batchMax,
		DrainNanos: r.drainNanos,
		SQLen:      int(r.tail - r.head),
		SQCap:      len(r.sq),
		CQLen:      len(r.cq),
		InFlight:   r.inflight,
		Closed:     r.closed,
	}
}
