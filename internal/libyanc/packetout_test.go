package libyanc

import (
	"errors"
	"strings"
	"testing"

	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// TestPacketOutZeroCopyFanout pins the tentpole claim: fanning one
// frame out to N switches stages exactly ONE copy of the payload. Both
// switches' frame files must share the same backing array (hard links
// to one inode), the staging entry must be gone from the spool, and
// every target's doorbell must have been rung.
func TestPacketOutZeroCopyFanout(t *testing.T) {
	y := newY(t)
	p := y.Root()
	for _, sw := range []string{"sw1", "sw2"} {
		if _, err := yancfs.CreateSwitch(p, "/", sw); err != nil {
			t.Fatal(err)
		}
	}
	frame := []byte("ethernet frame payload: 0123456789abcdef")
	c := New(y)
	if err := c.PacketOut([]string{"/switches/sw1", "/switches/sw2"}, "out=2 out=3 in_port=1", frame); err != nil {
		t.Fatal(err)
	}

	var backing [][]byte
	for _, sw := range []string{"sw1", "sw2"} {
		pout := "/switches/" + sw + "/pout"
		ents, err := p.ReadDir(pout)
		if err != nil {
			t.Fatalf("%s: %v", pout, err)
		}
		var msg string
		for _, e := range ents {
			if yancfs.IsPacketOutName(e.Name) {
				msg = vfs.Join(pout, e.Name)
			}
		}
		if msg == "" {
			t.Fatalf("%s: no staged packet-out among %v", pout, ents)
		}
		head, err := p.ReadString(vfs.Join(msg, yancfs.PacketOutHead))
		if err != nil || strings.TrimSpace(head) != "out=2 out=3 in_port=1" {
			t.Fatalf("%s head = %q, %v", sw, head, err)
		}
		data, err := p.ReadFileShared(vfs.Join(msg, yancfs.PacketOutFrame))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(frame) {
			t.Fatalf("%s frame = %q", sw, data)
		}
		backing = append(backing, data)
		if bell, err := p.ReadString(vfs.Join(pout, yancfs.FileDoorbell)); err != nil || strings.TrimSpace(bell) == "" {
			t.Fatalf("%s doorbell = %q, %v", sw, bell, err)
		}
	}
	// The zero-copy assertion itself: one staged payload, shared by
	// reference across the fan-out.
	if &backing[0][0] != &backing[1][0] {
		t.Error("fan-out copied the frame: the two switches' frame files have distinct backing arrays")
	}

	// The staging entry was unlinked inside the same transaction —
	// nothing is stranded in the spool.
	spool := vfs.Join("/", yancfs.DirEvents, yancfs.SpoolDir)
	if ents, err := p.ReadDir(spool); err == nil {
		for _, e := range ents {
			if yancfs.IsPacketOutName(e.Name) {
				t.Errorf("staging entry %s survived in the spool", e.Name)
			}
		}
	}
}

// TestPacketOutValidation pins the failure modes: a bad spec line and a
// missing switch are rejected up front, before anything is staged.
func TestPacketOutValidation(t *testing.T) {
	y := newY(t)
	p := y.Root()
	if _, err := yancfs.CreateSwitch(p, "/", "sw1"); err != nil {
		t.Fatal(err)
	}
	c := New(y)
	if err := c.PacketOut([]string{"/switches/sw1"}, "in_port=1", []byte("x")); err == nil {
		t.Error("spec with no actions accepted")
	}
	if err := c.PacketOut([]string{"/switches/sw1"}, "out=bogus", []byte("x")); err == nil {
		t.Error("bad action accepted")
	}
	err := c.PacketOut([]string{"/switches/sw1", "/switches/ghost"}, "out=1", []byte("x"))
	if !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("missing switch = %v, want ErrNotExist", err)
	}
	// The failed transaction left no partial fan-out behind.
	if ents, err := p.ReadDir("/switches/sw1/pout"); err == nil {
		for _, e := range ents {
			if yancfs.IsPacketOutName(e.Name) {
				t.Errorf("failed fan-out left %s behind", e.Name)
			}
		}
	}
	if err := c.PacketOut(nil, "out=1", []byte("x")); err != nil {
		t.Errorf("empty fan-out = %v, want nil no-op", err)
	}
}
