// Package procfs claims the last OS abstraction §5 of the paper leaves on
// the table: introspection of the controller itself through file I/O. It
// mounts a procfs-style metrics subtree (by convention /.proc, i.e.
// /net/.proc from outside) into the controller file system. Every metric
// is a synthetic read-only file, so the whole observability surface
// composes with what the repo already has — shell one-liners, dfs remote
// mounts, watches, and namespaced views all read it the same way they
// read switch state.
//
// Layout:
//
//	/.proc/vfs/ops        VFS entry-point counters (vfs.OpStats)
//	/.proc/vfs/latency    per-op latency histograms (count/avg/p50/p99/max)
//	/.proc/vfs/lock_shards  per-stripe acquisition counts for the sharded
//	                        inode locks (vfs.LockStats.PerShard)
//	/.proc/vfs/contention   tree/stripe lock acquisition + contention
//	                        counters and watch-dispatcher gauges
//	/.proc/vfs/resolve_lockfree  read-path resolutions served entirely by
//	                             the lock-free snapshot walk
//	/.proc/vfs/resolve_fallback  read-path resolutions that fell back to
//	                             the read-locked walk (symlink, "..",
//	                             chroot, or generation-conflict retries)
//	/.proc/watch/queues   per-watch queue depth, capacity, drops, overflows
//	/.proc/driver/<name>  per-switch rtt/echo/tx_rx (installed by the driver)
//	/.proc/dfs/rpc        dfs server request counters
//	/.proc/dfs/queue      per-mount eventual-write queue state
//	/.proc/dfs/reconnects per-mount reconnect counts and connection state
//	/.proc/dfs/replication  per-replica role/term/commit/applied/lag and
//	                        per-mount failover + replayed-write counters
//	/.proc/apps/<name>    per-application namespace/cgroup accounting
//	/.proc/events/stats   packet-in delivery counters (linked vs copied
//	                      bytes, live payload blocks, drops)
//	/.proc/events/batch   delivery batch-size histogram (power-of-2 buckets)
//	/.proc/events/apps    per-subscriber-buffer delivered/drops/depth
//	/.proc/libyanc/ring   flow-ring depth/stall/completion counters
//	/.proc/libyanc/batch  flow-ring drain/batch/latency counters
package procfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"yanc/internal/dfs"
	"yanc/internal/libyanc"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// Dir is the root of the metrics subtree inside the controller FS.
const Dir = "/.proc"

// DriverDir is where the driver publishes per-switch telemetry
// (Driver.ProcDir is pointed here by yanc.NewController).
const DriverDir = Dir + "/driver"

// AppsDir is where namespace launches publish per-application accounting.
const AppsDir = Dir + "/apps"

// LoadDir is where load harnesses (cmd/yancload via benchutil.RunChurn)
// publish their live progress counters.
const LoadDir = Dir + "/load"

// LibyancDir is where a libyanc flow ring publishes its depth, batch,
// and stall telemetry (InstallLibyanc).
const LibyancDir = Dir + "/libyanc"

// Tree is the installed metrics subtree plus the registries of dynamic
// sources (dfs servers and mounts) it reports on.
type Tree struct {
	fs *vfs.FS

	mu       sync.Mutex
	servers  []*dfs.Server
	mounts   map[string]*dfs.Client
	replicas []*dfs.Replica
	events   *yancfs.FS
}

// Install creates the .proc hierarchy on fs and returns the Tree handle
// used to bind dynamic sources. Directories are 0555 and files 0444: the
// subtree is strictly read-only, even for root's file I/O (metrics change
// only through the system doing work).
func Install(fs *vfs.FS) (*Tree, error) {
	t := &Tree{fs: fs, mounts: make(map[string]*dfs.Client)}
	err := fs.WithTx(func(tx *vfs.Tx) error {
		for _, d := range []string{Dir, Dir + "/vfs", Dir + "/watch", DriverDir, Dir + "/dfs", AppsDir, Dir + "/events"} {
			if err := tx.MkdirAll(d, 0o555, 0, 0); err != nil {
				return err
			}
		}
		files := map[string]func() ([]byte, error){
			Dir + "/vfs/ops":              t.renderOps,
			Dir + "/vfs/latency":          t.renderLatency,
			Dir + "/vfs/lock_shards":      t.renderLockShards,
			Dir + "/vfs/contention":       t.renderContention,
			Dir + "/vfs/resolve_lockfree": t.renderResolveLockfree,
			Dir + "/vfs/resolve_fallback": t.renderResolveFallback,
			Dir + "/watch/queues":         t.renderWatchQueues,
			Dir + "/dfs/rpc":              t.renderDFSRPC,
			Dir + "/dfs/queue":            t.renderDFSQueue,
			Dir + "/dfs/reconnects":       t.renderDFSReconnects,
			Dir + "/dfs/replication":      t.renderDFSReplication,
			Dir + "/events/stats":         t.renderEventStats,
			Dir + "/events/batch":         t.renderEventBatch,
			Dir + "/events/apps":          t.renderEventApps,
		}
		for path, read := range files {
			read := read
			if err := tx.SetSynthetic(path, &vfs.Synthetic{Read: read}, 0o444, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("procfs: install: %w", err)
	}
	return t, nil
}

// InstallLoad mounts a single read-only synthetic at /.proc/load/progress
// whose content comes from read. Load harnesses call it so their live
// state is observable through the same file I/O as every other metric —
// a yancsh one-liner or a dfs remote mount can watch a churn run go by.
// It is independent of Install: a load rig does not need the full tree.
func InstallLoad(fs *vfs.FS, read func() ([]byte, error)) error {
	err := fs.WithTx(func(tx *vfs.Tx) error {
		if err := tx.MkdirAll(LoadDir, 0o555, 0, 0); err != nil {
			return err
		}
		return tx.SetSynthetic(LoadDir+"/progress", &vfs.Synthetic{Read: read}, 0o444, 0, 0)
	})
	if err != nil {
		return fmt.Errorf("procfs: install load: %w", err)
	}
	return nil
}

// InstallLibyanc mounts the flow-ring telemetry files under
// /.proc/libyanc: "ring" reports queue depth, backpressure stalls, and
// completion counts; "batch" reports drain/batch-size/latency counters.
// Like InstallLoad it is independent of Install — a bench rig that only
// drives the ring does not need the full tree.
func InstallLibyanc(fs *vfs.FS, r *libyanc.FlowRing) error {
	ring := func() ([]byte, error) {
		s := r.Stats()
		var b strings.Builder
		closed := 0
		if s.Closed {
			closed = 1
		}
		for _, row := range []struct {
			name string
			n    int64
		}{
			{"sq_len", int64(s.SQLen)}, {"sq_cap", int64(s.SQCap)},
			{"cq_len", int64(s.CQLen)}, {"in_flight", int64(s.InFlight)},
			{"submitted", int64(s.Submitted)}, {"completed", int64(s.Completed)},
			{"installed", int64(s.Installed)}, {"stalls", int64(s.Stalls)},
			{"closed", int64(closed)},
		} {
			fmt.Fprintf(&b, "%-10s %d\n", row.name, row.n)
		}
		return []byte(b.String()), nil
	}
	batch := func() ([]byte, error) {
		s := r.Stats()
		var avg, avgNs uint64
		if s.Drains > 0 {
			avg = s.Completed / s.Drains
			avgNs = s.DrainNanos / s.Drains
		}
		var b strings.Builder
		for _, row := range []struct {
			name string
			n    uint64
		}{
			{"drains", s.Drains}, {"batch_max", uint64(s.BatchMax)},
			{"batch_avg", avg}, {"drain_ns_total", s.DrainNanos},
			{"drain_ns_avg", avgNs},
		} {
			fmt.Fprintf(&b, "%-14s %d\n", row.name, row.n)
		}
		return []byte(b.String()), nil
	}
	err := fs.WithTx(func(tx *vfs.Tx) error {
		if err := tx.MkdirAll(LibyancDir, 0o555, 0, 0); err != nil {
			return err
		}
		if err := tx.SetSynthetic(LibyancDir+"/ring", &vfs.Synthetic{Read: ring}, 0o444, 0, 0); err != nil {
			return err
		}
		return tx.SetSynthetic(LibyancDir+"/batch", &vfs.Synthetic{Read: batch}, 0o444, 0, 0)
	})
	if err != nil {
		return fmt.Errorf("procfs: install libyanc: %w", err)
	}
	return nil
}

// BindDFSServer adds a dfs export whose request counters .proc/dfs/rpc
// reports.
func (t *Tree) BindDFSServer(s *dfs.Server) {
	t.mu.Lock()
	t.servers = append(t.servers, s)
	t.mu.Unlock()
}

// BindDFSClient adds a remote mount under the given name; its queue and
// reconnect state appear in .proc/dfs/{queue,reconnects}.
func (t *Tree) BindDFSClient(name string, c *dfs.Client) {
	t.mu.Lock()
	t.mounts[name] = c
	t.mu.Unlock()
}

// UnbindDFSClient removes a mount from the registry (after Close).
func (t *Tree) UnbindDFSClient(name string) {
	t.mu.Lock()
	delete(t.mounts, name)
	t.mu.Unlock()
}

// BindReplica adds a dfs replica whose consensus state (role, term,
// commit/applied indices, lag) .proc/dfs/replication reports.
func (t *Tree) BindReplica(r *dfs.Replica) {
	t.mu.Lock()
	t.replicas = append(t.replicas, r)
	t.mu.Unlock()
}

// BindEvents registers the controller file system whose packet-in
// delivery counters .proc/events reports on.
func (t *Tree) BindEvents(y *yancfs.FS) {
	t.mu.Lock()
	t.events = y
	t.mu.Unlock()
}

func (t *Tree) eventsFS() *yancfs.FS {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

func (t *Tree) renderEventStats() ([]byte, error) {
	y := t.eventsFS()
	if y == nil {
		return []byte("unbound\n"), nil
	}
	s := y.EventStats()
	var b strings.Builder
	for _, row := range []struct {
		name string
		n    int64
	}{
		{"messages", int64(s.Messages)}, {"deliveries", int64(s.Deliveries)},
		{"batches", int64(s.Batches)}, {"drops", int64(s.Drops)},
		{"copied_bytes", int64(s.CopiedBytes)}, {"linked_bytes", int64(s.LinkedBytes)},
		{"blocks_live", s.BlocksLive}, {"bytes_live", s.BytesLive},
		{"cache_rebuilds", int64(s.CacheRebuilds)},
	} {
		fmt.Fprintf(&b, "%-14s %d\n", row.name, row.n)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderEventBatch() ([]byte, error) {
	y := t.eventsFS()
	if y == nil {
		return []byte("unbound\n"), nil
	}
	s := y.EventStats()
	var b strings.Builder
	for i, n := range s.BatchSizes {
		label := fmt.Sprintf("<=%d", 1<<i)
		if i == len(s.BatchSizes)-1 {
			label = fmt.Sprintf(">%d", 1<<(i-1))
		}
		fmt.Fprintf(&b, "%-8s %d\n", label, n)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderEventApps() ([]byte, error) {
	y := t.eventsFS()
	if y == nil {
		return []byte("unbound\n"), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %10s %8s %6s\n", "buffer", "delivered", "drops", "depth")
	for _, a := range y.EventApps() {
		fmt.Fprintf(&b, "%-40s %10d %8d %6d\n", a.Path, a.Delivered, a.Drops, a.Depth)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderOps() ([]byte, error) {
	s := t.fs.Stats()
	var b strings.Builder
	for _, row := range []struct {
		name string
		n    uint64
	}{
		{"lookups", s.Lookups}, {"opens", s.Opens}, {"reads", s.Reads},
		{"writes", s.Writes}, {"creates", s.Creates}, {"removes", s.Removes},
		{"renames", s.Renames}, {"stats", s.Stats}, {"links", s.Links},
		{"attrs", s.Attrs}, {"readdirs", s.ReadDirs}, {"watches", s.Watches},
	} {
		fmt.Fprintf(&b, "%-8s %d\n", row.name, row.n)
	}
	fmt.Fprintf(&b, "%-8s %d\n", "total", s.Total())
	return []byte(b.String()), nil
}

func (t *Tree) renderLatency() ([]byte, error) {
	return []byte(t.fs.Latency().Render()), nil
}

func (t *Tree) renderLockShards() ([]byte, error) {
	s := t.fs.LockStats()
	var b strings.Builder
	fmt.Fprintf(&b, "shards %d\n", s.Shards)
	for i, n := range s.PerShard {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "shard %-3d %d\n", i, n)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderContention() ([]byte, error) {
	s := t.fs.LockStats()
	queued, batches, backlog := t.fs.DispatchStats()
	var b strings.Builder
	for _, row := range []struct {
		name string
		n    uint64
	}{
		{"tree_read", s.TreeRead},
		{"tree_write", s.TreeWrite},
		{"tree_read_contended", s.TreeReadContended},
		{"tree_write_contended", s.TreeWriteContended},
		{"shard_read", s.ShardRead},
		{"shard_write", s.ShardWrite},
		{"shard_contended", s.ShardContended},
		{"contended_total", s.Contended()},
		{"watch_dispatch_queued", queued},
		{"watch_dispatch_batches", batches},
		{"watch_dispatch_backlog", uint64(backlog)},
	} {
		fmt.Fprintf(&b, "%-22s %d\n", row.name, row.n)
	}
	return []byte(b.String()), nil
}

// The resolve_* files hold one bare counter each, so shell-side ratio
// math stays a two-read one-liner (`$(<resolve_fallback)` over the sum).
// These two counters tick on every lock-free read, so unlike the other
// renders they are polled at high rates by monitoring loops: the render
// is a direct strconv append (one owned []byte, no fmt boxing).
func (t *Tree) renderResolveLockfree() ([]byte, error) {
	return renderCounter(t.fs.LockStats().ResolveLockfree), nil
}

func (t *Tree) renderResolveFallback() ([]byte, error) {
	return renderCounter(t.fs.LockStats().ResolveFallback), nil
}

// renderCounter formats one bare counter as "<n>\n" in a single
// exactly-sized allocation: the returned buffer is the file content.
func renderCounter(n uint64) []byte {
	buf := make([]byte, 0, 21) // max uint64 digits + newline
	return append(strconv.AppendUint(buf, n, 10), '\n')
}

func (t *Tree) renderWatchQueues() ([]byte, error) {
	infos := t.fs.WatchInfos()
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-9s %8s %8s %8s %s\n",
		"id", "depth", "capacity", "drops", "overflow", "mask", "path")
	for _, w := range infos {
		path := w.Path
		if w.Recursive {
			path += " (recursive)"
		}
		fmt.Fprintf(&b, "%-4d %-6d %-9d %8d %8d %8x %s\n",
			w.ID, w.Depth, w.Capacity, w.Drops, w.Overflows, uint32(w.Mask), path)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderDFSRPC() ([]byte, error) {
	t.mu.Lock()
	servers := append([]*dfs.Server(nil), t.servers...)
	t.mu.Unlock()
	var b strings.Builder
	if len(servers) == 0 {
		b.WriteString("no exports\n")
	}
	for i, s := range servers {
		st := s.Stats()
		fmt.Fprintf(&b, "export %d: sessions %d requests %d errors %d watches %d\n",
			i, st.Sessions, st.Requests, st.Errors, st.Watches)
		ops := make([]string, 0, len(st.PerOp))
		for op := range st.PerOp {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			fmt.Fprintf(&b, "  %-12s %d\n", op, st.PerOp[op])
		}
	}
	return []byte(b.String()), nil
}

// sortedMounts returns the bound mounts in name order.
func (t *Tree) sortedMounts() []struct {
	name string
	c    *dfs.Client
} {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]struct {
		name string
		c    *dfs.Client
	}, 0, len(t.mounts))
	for name, c := range t.mounts {
		out = append(out, struct {
			name string
			c    *dfs.Client
		}{name, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (t *Tree) renderDFSQueue() ([]byte, error) {
	mounts := t.sortedMounts()
	var b strings.Builder
	if len(mounts) == 0 {
		b.WriteString("no mounts\n")
	}
	for _, m := range mounts {
		st := m.c.Stats()
		fmt.Fprintf(&b, "%s: depth %d/%d queued %d flushed %d rejects %d\n",
			m.name, st.QueueDepth, st.QueueCap, st.Queued, st.Flushed, st.QueueRejects)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderDFSReconnects() ([]byte, error) {
	mounts := t.sortedMounts()
	var b strings.Builder
	if len(mounts) == 0 {
		b.WriteString("no mounts\n")
	}
	for _, m := range mounts {
		st := m.c.Stats()
		state := "down"
		if st.Connected {
			state = "up"
		}
		fmt.Fprintf(&b, "%s: %s addr %s reconnects %d calls %d errors %d timeouts %d\n",
			m.name, state, m.c.Addr(), st.Reconnects, st.Calls, st.Errors, st.Timeouts)
	}
	return []byte(b.String()), nil
}

func (t *Tree) renderDFSReplication() ([]byte, error) {
	t.mu.Lock()
	replicas := append([]*dfs.Replica(nil), t.replicas...)
	t.mu.Unlock()
	mounts := t.sortedMounts()
	var b strings.Builder
	if len(replicas) == 0 && len(mounts) == 0 {
		b.WriteString("no replicas\n")
	}
	for _, r := range replicas {
		st := r.Stats()
		fmt.Fprintf(&b, "replica %d: role %s term %d log %d commit %d applied %d lag %d leader %d elections %d stepdowns %d dedup_skips %d\n",
			st.ID, st.Role, st.Term, st.LogLen, st.Commit, st.Applied, st.Lag,
			st.LeaderID, st.Elections, st.StepDowns, st.DedupSkips)
	}
	for _, m := range mounts {
		st := m.c.Stats()
		if st.Failovers == 0 && st.ReplayedWrites == 0 {
			continue
		}
		fmt.Fprintf(&b, "mount %s: failovers %d replayed_writes %d\n",
			m.name, st.Failovers, st.ReplayedWrites)
	}
	return []byte(b.String()), nil
}
