package procfs

import (
	"strings"
	"testing"

	"yanc/internal/dfs"
	"yanc/internal/vfs"
)

func TestInstallCreatesReadOnlyTree(t *testing.T) {
	fs := vfs.New()
	tree, err := Install(fs)
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil {
		t.Fatal("nil tree")
	}
	p := fs.RootProc()
	for _, path := range []string{
		Dir + "/vfs/ops",
		Dir + "/vfs/latency",
		Dir + "/vfs/lock_shards",
		Dir + "/vfs/contention",
		Dir + "/vfs/resolve_lockfree",
		Dir + "/vfs/resolve_fallback",
		Dir + "/watch/queues",
		Dir + "/dfs/rpc",
		Dir + "/dfs/queue",
		Dir + "/dfs/reconnects",
	} {
		s, err := p.ReadString(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if s == "" {
			t.Fatalf("%s rendered empty", path)
		}
	}
	for _, d := range []string{Dir, DriverDir, AppsDir} {
		st, err := p.Stat(d)
		if err != nil {
			t.Fatalf("stat %s: %v", d, err)
		}
		if !st.IsDir() {
			t.Fatalf("%s is not a directory", d)
		}
	}
	// Even root cannot write metrics: synthetic files without a Write
	// hook reject all writes.
	if err := p.WriteString(Dir+"/vfs/ops", "tamper"); err == nil {
		t.Fatal("write to .proc file unexpectedly succeeded")
	}
	// Unprivileged apps cannot create files inside the 0555 tree.
	app := fs.Proc(vfs.Cred{UID: 1000, GID: 1000})
	if err := app.WriteString(Dir+"/vfs/extra", "new"); err == nil {
		t.Fatal("unprivileged create inside .proc unexpectedly succeeded")
	}
}

func TestOpsAndLatencyReflectActivity(t *testing.T) {
	fs := vfs.New()
	if _, err := Install(fs); err != nil {
		t.Fatal(err)
	}
	p := fs.RootProc()
	if err := p.MkdirAll("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteString("/switches/sw1/state", "up"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ReadString("/switches/sw1/state"); err != nil {
		t.Fatal(err)
	}

	ops, err := p.ReadString(Dir + "/vfs/ops")
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"opens", "reads", "writes", "total"} {
		if !strings.Contains(ops, field) {
			t.Fatalf("ops missing %q:\n%s", field, ops)
		}
	}
	if strings.Contains(ops, "writes   0\n") {
		t.Fatalf("writes counter stuck at zero:\n%s", ops)
	}

	lat, err := p.ReadString(Dir + "/vfs/latency")
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"op", "count", "p50", "p99", "max", "write"} {
		if !strings.Contains(lat, col) {
			t.Fatalf("latency missing %q:\n%s", col, lat)
		}
	}

	// Lock telemetry: the activity above took tree and stripe locks, so
	// both files must show non-zero counters.
	shards, err := p.ReadString(Dir + "/vfs/lock_shards")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shards, "shards") || !strings.Contains(shards, "shard ") {
		t.Fatalf("lock_shards shows no per-stripe activity:\n%s", shards)
	}
	cont, err := p.ReadString(Dir + "/vfs/contention")
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"tree_read", "tree_write", "shard_read", "contended_total", "watch_dispatch_queued"} {
		if !strings.Contains(cont, field) {
			t.Fatalf("contention missing %q:\n%s", field, cont)
		}
	}
	if strings.Contains(cont, "tree_read               0\n") {
		t.Fatalf("tree_read counter stuck at zero:\n%s", cont)
	}
}

func TestWatchQueuesListWatches(t *testing.T) {
	fs := vfs.New()
	if _, err := Install(fs); err != nil {
		t.Fatal(err)
	}
	p := fs.RootProc()
	if err := p.MkdirAll("/topo", 0o755); err != nil {
		t.Fatal(err)
	}
	w, err := p.AddWatch("/topo", vfs.OpAll, vfs.Recursive())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	s, err := p.ReadString(Dir + "/watch/queues")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "/topo (recursive)") {
		t.Fatalf("watch table missing /topo:\n%s", s)
	}
}

func TestDFSBindings(t *testing.T) {
	fs := vfs.New()
	tree, err := Install(fs)
	if err != nil {
		t.Fatal(err)
	}
	p := fs.RootProc()

	// Empty registries render placeholders, not errors.
	for path, want := range map[string]string{
		Dir + "/dfs/rpc":        "no exports",
		Dir + "/dfs/queue":      "no mounts",
		Dir + "/dfs/reconnects": "no mounts",
	} {
		s, err := p.ReadString(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, want) {
			t.Fatalf("%s: want %q, got:\n%s", path, want, s)
		}
	}

	srv := dfs.NewServer(fs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tree.BindDFSServer(srv)

	c, err := dfs.Mount(addr, vfs.Root, dfs.Strict)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tree.BindDFSClient("peer", c)

	if err := c.MkdirAll("/from-remote", 0o755); err != nil {
		t.Fatal(err)
	}

	rpc, err := p.ReadString(Dir + "/dfs/rpc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rpc, "export 0:") || !strings.Contains(rpc, "requests") {
		t.Fatalf("rpc file malformed:\n%s", rpc)
	}
	rec, err := p.ReadString(Dir + "/dfs/reconnects")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec, "peer: up") {
		t.Fatalf("reconnects should show peer up:\n%s", rec)
	}
	q, err := p.ReadString(Dir + "/dfs/queue")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "peer: depth") {
		t.Fatalf("queue file malformed:\n%s", q)
	}

	tree.UnbindDFSClient("peer")
	rec, err = p.ReadString(Dir + "/dfs/reconnects")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rec, "no mounts") {
		t.Fatalf("unbind did not remove mount:\n%s", rec)
	}
}

func TestInstallIsIdempotent(t *testing.T) {
	fs := vfs.New()
	if _, err := Install(fs); err != nil {
		t.Fatal(err)
	}
	// Reinstalling rebinds the synthetic files in place rather than
	// failing, so a restarted controller can reclaim the subtree.
	if _, err := Install(fs); err != nil {
		t.Fatalf("second install failed: %v", err)
	}
	if s, err := fs.RootProc().ReadString(Dir + "/vfs/ops"); err != nil || s == "" {
		t.Fatalf("ops unreadable after reinstall: %q, %v", s, err)
	}
}

func TestReplicationFile(t *testing.T) {
	fs := vfs.New()
	tree, err := Install(fs)
	if err != nil {
		t.Fatal(err)
	}
	p := fs.RootProc()

	s, err := p.ReadString(Dir + "/dfs/replication")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "no replicas") {
		t.Fatalf("empty registry should render placeholder:\n%s", s)
	}

	// A single-member group elects itself leader immediately.
	rfs := vfs.New()
	rep, err := dfs.NewReplica(rfs, dfs.ReplicaOptions{ID: 0, Addrs: []string{"127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rep.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	defer rep.Close()
	tree.BindReplica(rep)

	c, err := dfs.MountReplicas([]string{addr}, vfs.Root, dfs.Strict, dfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tree.BindDFSClient("ha", c)
	if err := c.WriteFile("/flows/f1", []byte("out=2"), 0o644); err == nil {
		t.Fatal("write into missing dir should fail")
	}
	if err := c.MkdirAll("/flows", 0o755); err != nil {
		t.Fatal(err)
	}

	s, err = p.ReadString(Dir + "/dfs/replication")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "replica 0: role leader term") {
		t.Fatalf("replication file missing leader row:\n%s", s)
	}
	if !strings.Contains(s, "applied") || !strings.Contains(s, "lag 0") {
		t.Fatalf("replication file missing apply state:\n%s", s)
	}
}
