package ethernet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestMACParseFormat(t *testing.T) {
	m, err := ParseMAC("00:1a:2b:3c:4d:5e")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "00:1a:2b:3c:4d:5e" {
		t.Errorf("round trip = %s", m)
	}
	if _, err := ParseMAC("nope"); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad mac err = %v", err)
	}
	if _, err := ParseMAC("00:1a:2b:3c:4d"); !errors.Is(err, ErrBadFormat) {
		t.Errorf("short mac err = %v", err)
	}
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast predicates")
	}
	if m.IsBroadcast() || m.IsMulticast() {
		t.Error("unicast predicates")
	}
	if !LLDPMulticast.IsMulticast() {
		t.Error("lldp multicast predicate")
	}
}

func TestMACUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= 0xffffffffffff
		return MACFromUint64(v).Uint64() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIP4ParseFormat(t *testing.T) {
	ip, err := ParseIP4("10.0.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "10.0.1.2" {
		t.Errorf("round trip = %s", ip)
	}
	if _, err := ParseIP4("10.0.1"); !errors.Is(err, ErrBadFormat) {
		t.Errorf("short ip err = %v", err)
	}
	if _, err := ParseIP4("10.0.1.999"); !errors.Is(err, ErrBadFormat) {
		t.Errorf("overflow ip err = %v", err)
	}
	f := func(v uint32) bool { return IP4FromUint32(v).Uint32() == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("prefix string = %s", p)
	}
	in, _ := ParseIP4("10.200.3.4")
	out, _ := ParseIP4("11.0.0.1")
	if !p.Contains(in) || p.Contains(out) {
		t.Error("contains wrong")
	}
	// Bare address = /32.
	p32, err := ParsePrefix("192.168.1.1")
	if err != nil || p32.Bits != 32 {
		t.Fatalf("bare prefix = %+v %v", p32, err)
	}
	if !p32.Contains(p32.Addr) {
		t.Error("/32 must contain itself")
	}
	// /0 contains everything.
	p0, _ := ParsePrefix("0.0.0.0/0")
	if !p0.Contains(out) {
		t.Error("/0 contains")
	}
	if _, err := ParsePrefix("10.0.0.0/33"); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad bits err = %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{
		Dst:     MAC{1, 2, 3, 4, 5, 6},
		Src:     MAC{7, 8, 9, 10, 11, 12},
		Type:    TypeIPv4,
		Payload: []byte("payload"),
	}
	got, err := DecodeFrame(f.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip = %+v", got)
	}
	if got.VLANID != 0 {
		t.Errorf("untagged frame has vlan %d", got.VLANID)
	}
}

func TestFrameVLANRoundTrip(t *testing.T) {
	f := Frame{
		Dst:     Broadcast,
		Src:     MAC{7, 8, 9, 10, 11, 12},
		VLANID:  100,
		VLANPCP: 5,
		Type:    TypeARP,
		Payload: []byte{1, 2, 3},
	}
	b := f.Serialize()
	if len(b) != 14+4+3 {
		t.Fatalf("tagged frame len = %d", len(b))
	}
	got, err := DecodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.VLANID != 100 || got.VLANPCP != 5 || got.Type != TypeARP {
		t.Errorf("vlan round trip = %+v", got)
	}
}

func TestFrameTruncated(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame err = %v", err)
	}
	// Tagged frame cut inside the tag.
	f := Frame{VLANID: 5, Type: TypeIPv4}
	b := f.Serialize()[:15]
	if _, err := DecodeFrame(b); !errors.Is(err, ErrTruncated) {
		t.Errorf("cut vlan err = %v", err)
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:       ARPRequest,
		SenderHW: MAC{1, 2, 3, 4, 5, 6},
		SenderIP: IP4{10, 0, 0, 1},
		TargetIP: IP4{10, 0, 0, 2},
	}
	got, err := DecodeARP(a.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("round trip = %+v want %+v", got, a)
	}
	if _, err := DecodeARP(make([]byte, 27)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short arp err = %v", err)
	}
	bad := a.Serialize()
	bad[0] = 9 // htype
	if _, err := DecodeARP(bad); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad htype err = %v", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	p := IPv4{
		TOS:      0x10,
		ID:       1234,
		TTL:      64,
		Protocol: ProtoTCP,
		Src:      IP4{10, 0, 0, 1},
		Dst:      IP4{10, 0, 0, 2},
		Payload:  []byte("data"),
	}
	b := p.Serialize()
	// Header checksum must verify (sum over header = 0).
	if Checksum(b[:20]) != 0 {
		t.Error("checksum does not verify")
	}
	got, err := DecodeIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.TTL != 64 || got.Protocol != ProtoTCP ||
		got.TOS != p.TOS || got.ID != p.ID || !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeIPv4(make([]byte, 19)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short ip err = %v", err)
	}
	bad := p.Serialize()
	bad[0] = 0x65 // version 6
	if _, err := DecodeIPv4(bad); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad version err = %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	s := TCP{
		SrcPort: 43123,
		DstPort: 22,
		Seq:     0xdeadbeef,
		Ack:     0x01020304,
		Flags:   TCPSyn | TCPAck,
		Window:  65535,
		Payload: []byte("ssh"),
	}
	got, err := DecodeTCP(s.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != s.SrcPort || got.DstPort != 22 || got.Seq != s.Seq ||
		got.Ack != s.Ack || got.Flags != s.Flags || got.Window != s.Window ||
		!bytes.Equal(got.Payload, s.Payload) {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeTCP(make([]byte, 19)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short tcp err = %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{SrcPort: 68, DstPort: 67, Payload: []byte("dhcp")}
	got, err := DecodeUDP(u.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != 68 || got.DstPort != 67 || !bytes.Equal(got.Payload, u.Payload) {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeUDP(make([]byte, 7)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short udp err = %v", err)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	ic := ICMPEcho{Type: ICMPEchoRequest, ID: 77, Seq: 3, Payload: []byte("ping")}
	b := ic.Serialize()
	if Checksum(b) != 0 {
		t.Error("icmp checksum does not verify")
	}
	got, err := DecodeICMPEcho(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != ICMPEchoRequest || got.ID != 77 || got.Seq != 3 || !bytes.Equal(got.Payload, ic.Payload) {
		t.Errorf("round trip = %+v", got)
	}
}

func TestLLDPRoundTrip(t *testing.T) {
	l := LLDP{ChassisID: "sw1", PortID: "2", TTL: 120}
	got, err := DecodeLLDP(l.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Errorf("round trip = %+v want %+v", got, l)
	}
	// Truncated TLV.
	b := l.Serialize()
	if _, err := DecodeLLDP(b[:3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated lldp err = %v", err)
	}
}

func TestFullStackEncapsulation(t *testing.T) {
	// host A pings host B: ICMP in IPv4 in Ethernet, decoded layer by layer.
	icmp := ICMPEcho{Type: ICMPEchoRequest, ID: 1, Seq: 1, Payload: []byte("abc")}
	ip := IPv4{TTL: 64, Protocol: ProtoICMP, Src: IP4{10, 0, 0, 1}, Dst: IP4{10, 0, 0, 2}, Payload: icmp.Serialize()}
	fr := Frame{Dst: MAC{0xaa}, Src: MAC{0xbb}, Type: TypeIPv4, Payload: ip.Serialize()}
	wire := fr.Serialize()

	f2, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := DecodeIPv4(f2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ip2.Protocol != ProtoICMP {
		t.Fatalf("proto = %d", ip2.Protocol)
	}
	ic2, err := DecodeICMPEcho(ip2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(ic2.Payload) != "abc" {
		t.Errorf("payload = %q", ic2.Payload)
	}
}

func TestFrameQuickRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, vlan uint16, pcp uint8, et uint16, payload []byte) bool {
		fr := Frame{
			Dst:     MAC(dst),
			Src:     MAC(src),
			VLANID:  vlan & 0x0fff,
			VLANPCP: pcp & 7,
			Type:    EtherType(et),
			Payload: payload,
		}
		if fr.Type == TypeVLAN {
			fr.Type = TypeIPv4 // double-tagging is out of scope
		}
		got, err := DecodeFrame(fr.Serialize())
		if err != nil {
			return false
		}
		return got.Dst == fr.Dst && got.Src == fr.Src && got.VLANID == fr.VLANID &&
			(fr.VLANID == 0 || got.VLANPCP == fr.VLANPCP) &&
			got.Type == fr.Type && bytes.Equal(got.Payload, fr.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumProperties(t *testing.T) {
	// Appending the checksum of data to data yields a verifying sum.
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		cs := Checksum(data)
		full := append(append([]byte{}, data...), byte(cs>>8), byte(cs))
		return Checksum(full) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
