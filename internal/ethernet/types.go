// Package ethernet is a small packet encode/decode library in the style
// of gopacket: every layer has DecodeFromBytes and AppendTo methods, no
// hidden allocation, big-endian wire format. It covers exactly the
// protocols the yanc system applications need — Ethernet, 802.1Q VLAN,
// ARP, IPv4, TCP, UDP, ICMP echo, and LLDP for topology discovery.
package ethernet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrTruncated reports a buffer too short for the layer being decoded.
var ErrTruncated = errors.New("ethernet: truncated packet")

// ErrBadFormat reports a structurally invalid field.
var ErrBadFormat = errors.New("ethernet: bad format")

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones MAC address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// LLDPMulticast is the nearest-bridge LLDP destination address.
var LLDPMulticast = MAC{0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e}

// String formats the address as aa:bb:cc:dd:ee:ff.
func (m MAC) String() string {
	return string(m.AppendString(make([]byte, 0, 17)))
}

// AppendString appends the colon-separated hex form to dst and returns
// the extended slice.
//
//yancvet:hotalloc
func (m MAC) AppendString(dst []byte) []byte {
	const hex = "0123456789abcdef"
	for i, b := range m {
		if i > 0 {
			dst = append(dst, ':')
		}
		dst = append(dst, hex[b>>4], hex[b&0xf])
	}
	return dst
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// ParseMAC parses aa:bb:cc:dd:ee:ff (also accepts '-' separators).
func ParseMAC(s string) (MAC, error) {
	var m MAC
	s = strings.ReplaceAll(s, "-", ":")
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("%w: mac %q", ErrBadFormat, s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("%w: mac %q", ErrBadFormat, s)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MACFromUint64 builds a MAC from the low 48 bits of v; handy for
// assigning deterministic addresses in simulations.
func MACFromUint64(v uint64) MAC {
	var m MAC
	m[0] = byte(v >> 40)
	m[1] = byte(v >> 32)
	m[2] = byte(v >> 24)
	m[3] = byte(v >> 16)
	m[4] = byte(v >> 8)
	m[5] = byte(v)
	return m
}

// Uint64 returns the address as an integer.
func (m MAC) Uint64() uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

// IP4 is an IPv4 address.
type IP4 [4]byte

// String formats the address in dotted quad.
func (ip IP4) String() string {
	return string(ip.AppendString(make([]byte, 0, 15)))
}

// AppendString appends the dotted-quad form to dst and returns the
// extended slice — the no-Sprintf renderer bulk flow writers use.
//
//yancvet:hotalloc
func (ip IP4) AppendString(dst []byte) []byte {
	for i, b := range ip {
		if i > 0 {
			dst = append(dst, '.')
		}
		dst = strconv.AppendUint(dst, uint64(b), 10)
	}
	return dst
}

// Uint32 returns the address as a big-endian integer.
func (ip IP4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IP4FromUint32 builds an address from a big-endian integer.
func IP4FromUint32(v uint32) IP4 {
	var ip IP4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// ParseIP4 parses dotted-quad notation.
func ParseIP4(s string) (IP4, error) {
	var ip IP4
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return ip, fmt.Errorf("%w: ip %q", ErrBadFormat, s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return ip, fmt.Errorf("%w: ip %q", ErrBadFormat, s)
		}
		ip[i] = byte(v)
	}
	return ip, nil
}

// Prefix is an IPv4 CIDR prefix; yanc match files such as match.nw_src
// "take the CIDR notation" (§3.4).
type Prefix struct {
	Addr IP4
	Bits int // 0..32
}

// ParsePrefix parses "a.b.c.d/len"; a bare address means /32.
func ParsePrefix(s string) (Prefix, error) {
	addr, bits, found := strings.Cut(s, "/")
	ip, err := ParseIP4(addr)
	if err != nil {
		return Prefix{}, err
	}
	n := 32
	if found {
		n, err = strconv.Atoi(bits)
		if err != nil || n < 0 || n > 32 {
			return Prefix{}, fmt.Errorf("%w: prefix %q", ErrBadFormat, s)
		}
	}
	return Prefix{Addr: ip, Bits: n}, nil
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return string(p.AppendString(make([]byte, 0, 18)))
}

// AppendString appends the CIDR form to dst and returns the extended
// slice.
//
//yancvet:hotalloc
func (p Prefix) AppendString(dst []byte) []byte {
	dst = p.Addr.AppendString(dst)
	dst = append(dst, '/')
	return strconv.AppendInt(dst, int64(p.Bits), 10)
}

// Mask returns the prefix netmask as an integer.
func (p Prefix) Mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP4) bool {
	return ip.Uint32()&p.Mask() == p.Addr.Uint32()&p.Mask()
}

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// Well-known EtherTypes.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
	TypeVLAN EtherType = 0x8100
	TypeLLDP EtherType = 0x88cc
)

func (t EtherType) String() string {
	switch t {
	case TypeIPv4:
		return "ipv4"
	case TypeARP:
		return "arp"
	case TypeVLAN:
		return "vlan"
	case TypeLLDP:
		return "lldp"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)
