package ethernet

import (
	"encoding/binary"
	"fmt"
)

// LLDP TLV types (IEEE 802.1AB) — only the mandatory set plus end marker,
// which is all topology discovery needs.
const (
	lldpTLVEnd       = 0
	lldpTLVChassisID = 1
	lldpTLVPortID    = 2
	lldpTLVTTL       = 3
)

// Chassis/port ID subtypes used by the discovery daemon.
const (
	lldpChassisLocal = 7
	lldpPortLocal    = 7
)

// LLDP is the minimal LLDPDU the topology application emits and parses:
// chassis = switch datapath name, port = port number (§4.3).
type LLDP struct {
	ChassisID string
	PortID    string
	TTL       uint16
}

// DecodeLLDP parses an LLDPDU payload.
func DecodeLLDP(b []byte) (LLDP, error) {
	var l LLDP
	for len(b) >= 2 {
		head := binary.BigEndian.Uint16(b[0:2])
		typ := head >> 9
		length := int(head & 0x1ff)
		b = b[2:]
		if len(b) < length {
			return l, fmt.Errorf("%w: lldp tlv", ErrTruncated)
		}
		val := b[:length]
		b = b[length:]
		switch typ {
		case lldpTLVEnd:
			return l, nil
		case lldpTLVChassisID:
			if len(val) < 1 {
				return l, fmt.Errorf("%w: lldp chassis", ErrBadFormat)
			}
			l.ChassisID = string(val[1:])
		case lldpTLVPortID:
			if len(val) < 1 {
				return l, fmt.Errorf("%w: lldp port", ErrBadFormat)
			}
			l.PortID = string(val[1:])
		case lldpTLVTTL:
			if len(val) < 2 {
				return l, fmt.Errorf("%w: lldp ttl", ErrBadFormat)
			}
			l.TTL = binary.BigEndian.Uint16(val[0:2])
		}
	}
	return l, nil
}

func appendTLV(dst []byte, typ uint16, val []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, typ<<9|uint16(len(val)))
	return append(dst, val...)
}

// AppendTo serializes the LLDPDU onto dst.
func (l LLDP) AppendTo(dst []byte) []byte {
	chassis := append([]byte{lldpChassisLocal}, l.ChassisID...)
	port := append([]byte{lldpPortLocal}, l.PortID...)
	var ttl [2]byte
	binary.BigEndian.PutUint16(ttl[:], l.TTL)
	dst = appendTLV(dst, lldpTLVChassisID, chassis)
	dst = appendTLV(dst, lldpTLVPortID, port)
	dst = appendTLV(dst, lldpTLVTTL, ttl[:])
	return appendTLV(dst, lldpTLVEnd, nil)
}

// Serialize returns the LLDPDU as a fresh slice.
func (l LLDP) Serialize() []byte { return l.AppendTo(make([]byte, 0, 32)) }
