package ethernet

import (
	"encoding/binary"
	"fmt"
)

// DHCP message types (RFC 2131 option 53).
const (
	DHCPDiscover = 1
	DHCPOffer    = 2
	DHCPRequest  = 3
	DHCPAck      = 5
	DHCPNak      = 6
)

// DHCP well-known ports.
const (
	DHCPServerPort = 67
	DHCPClientPort = 68
)

// dhcpMagic is the BOOTP options magic cookie.
var dhcpMagic = [4]byte{99, 130, 83, 99}

// DHCP is the subset of a BOOTP/DHCP message the dhcpd daemon uses.
type DHCP struct {
	Op       uint8 // 1 = request, 2 = reply
	XID      uint32
	ClientHW MAC
	YourIP   IP4 // address being offered/assigned
	ServerIP IP4
	MsgType  uint8 // option 53
	ReqIP    IP4   // option 50 (REQUEST)
	Mask     IP4   // option 1 (replies)
	Router   IP4   // option 3 (replies)
	LeaseSec uint32
}

// DecodeDHCP parses a DHCP payload (the UDP payload).
func DecodeDHCP(b []byte) (DHCP, error) {
	var d DHCP
	if len(b) < 240 {
		return d, fmt.Errorf("%w: dhcp %d bytes", ErrTruncated, len(b))
	}
	d.Op = b[0]
	if b[1] != 1 || b[2] != 6 {
		return d, fmt.Errorf("%w: dhcp htype/hlen", ErrBadFormat)
	}
	d.XID = binary.BigEndian.Uint32(b[4:8])
	copy(d.YourIP[:], b[16:20])
	copy(d.ServerIP[:], b[20:24])
	copy(d.ClientHW[:], b[28:34])
	if [4]byte(b[236:240]) != dhcpMagic {
		return d, fmt.Errorf("%w: dhcp magic", ErrBadFormat)
	}
	opts := b[240:]
	for len(opts) >= 1 {
		code := opts[0]
		if code == 255 {
			break
		}
		if code == 0 {
			opts = opts[1:]
			continue
		}
		if len(opts) < 2 {
			return d, fmt.Errorf("%w: dhcp option header", ErrTruncated)
		}
		length := int(opts[1])
		if len(opts) < 2+length {
			return d, fmt.Errorf("%w: dhcp option body", ErrTruncated)
		}
		val := opts[2 : 2+length]
		switch code {
		case 53:
			if length >= 1 {
				d.MsgType = val[0]
			}
		case 50:
			if length >= 4 {
				copy(d.ReqIP[:], val[0:4])
			}
		case 1:
			if length >= 4 {
				copy(d.Mask[:], val[0:4])
			}
		case 3:
			if length >= 4 {
				copy(d.Router[:], val[0:4])
			}
		case 51:
			if length >= 4 {
				d.LeaseSec = binary.BigEndian.Uint32(val[0:4])
			}
		}
		opts = opts[2+length:]
	}
	return d, nil
}

// AppendTo serializes the message onto dst.
func (d DHCP) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, 240)...)
	b := dst[start:]
	b[0] = d.Op
	b[1] = 1 // Ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:8], d.XID)
	copy(b[16:20], d.YourIP[:])
	copy(b[20:24], d.ServerIP[:])
	copy(b[28:34], d.ClientHW[:])
	copy(b[236:240], dhcpMagic[:])
	appendOpt := func(code uint8, val []byte) {
		dst = append(dst, code, uint8(len(val)))
		dst = append(dst, val...)
	}
	if d.MsgType != 0 {
		appendOpt(53, []byte{d.MsgType})
	}
	if d.ReqIP != (IP4{}) {
		appendOpt(50, d.ReqIP[:])
	}
	if d.Mask != (IP4{}) {
		appendOpt(1, d.Mask[:])
	}
	if d.Router != (IP4{}) {
		appendOpt(3, d.Router[:])
	}
	if d.LeaseSec != 0 {
		var lease [4]byte
		binary.BigEndian.PutUint32(lease[:], d.LeaseSec)
		appendOpt(51, lease[:])
	}
	if d.ServerIP != (IP4{}) {
		appendOpt(54, d.ServerIP[:])
	}
	return append(dst, 255)
}

// Serialize returns the message as a fresh slice.
func (d DHCP) Serialize() []byte { return d.AppendTo(make([]byte, 0, 280)) }
