package ethernet

import (
	"encoding/binary"
	"fmt"
)

// Frame is an Ethernet II frame, optionally 802.1Q tagged.
type Frame struct {
	Dst     MAC
	Src     MAC
	VLANID  uint16 // 0 = untagged; 1..4094 = tagged
	VLANPCP uint8  // priority bits, only meaningful when tagged
	Type    EtherType
	Payload []byte
}

// DecodeFrame parses a frame, including an optional single 802.1Q tag.
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) < 14 {
		return f, fmt.Errorf("%w: frame %d bytes", ErrTruncated, len(b))
	}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	et := EtherType(binary.BigEndian.Uint16(b[12:14]))
	rest := b[14:]
	if et == TypeVLAN {
		if len(rest) < 4 {
			return f, fmt.Errorf("%w: vlan tag", ErrTruncated)
		}
		tci := binary.BigEndian.Uint16(rest[0:2])
		f.VLANPCP = uint8(tci >> 13)
		f.VLANID = tci & 0x0fff
		et = EtherType(binary.BigEndian.Uint16(rest[2:4]))
		rest = rest[4:]
	}
	f.Type = et
	f.Payload = rest
	return f, nil
}

// AppendTo serializes the frame onto dst and returns the extended slice.
func (f Frame) AppendTo(dst []byte) []byte {
	dst = append(dst, f.Dst[:]...)
	dst = append(dst, f.Src[:]...)
	if f.VLANID != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(TypeVLAN))
		tci := uint16(f.VLANPCP)<<13 | f.VLANID&0x0fff
		dst = binary.BigEndian.AppendUint16(dst, tci)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(f.Type))
	return append(dst, f.Payload...)
}

// Serialize returns the frame as a fresh byte slice.
func (f Frame) Serialize() []byte {
	return f.AppendTo(make([]byte, 0, 18+len(f.Payload)))
}

// ARP operation codes.
const (
	ARPRequest = 1
	ARPReply   = 2
)

// ARP is an IPv4-over-Ethernet ARP packet.
type ARP struct {
	Op       uint16
	SenderHW MAC
	SenderIP IP4
	TargetHW MAC
	TargetIP IP4
}

// DecodeARP parses an ARP payload.
func DecodeARP(b []byte) (ARP, error) {
	var a ARP
	if len(b) < 28 {
		return a, fmt.Errorf("%w: arp %d bytes", ErrTruncated, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || EtherType(binary.BigEndian.Uint16(b[2:4])) != TypeIPv4 {
		return a, fmt.Errorf("%w: arp htype/ptype", ErrBadFormat)
	}
	if b[4] != 6 || b[5] != 4 {
		return a, fmt.Errorf("%w: arp hlen/plen", ErrBadFormat)
	}
	a.Op = binary.BigEndian.Uint16(b[6:8])
	copy(a.SenderHW[:], b[8:14])
	copy(a.SenderIP[:], b[14:18])
	copy(a.TargetHW[:], b[18:24])
	copy(a.TargetIP[:], b[24:28])
	return a, nil
}

// AppendTo serializes the ARP packet onto dst.
func (a ARP) AppendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, 1) // Ethernet
	dst = binary.BigEndian.AppendUint16(dst, uint16(TypeIPv4))
	dst = append(dst, 6, 4)
	dst = binary.BigEndian.AppendUint16(dst, a.Op)
	dst = append(dst, a.SenderHW[:]...)
	dst = append(dst, a.SenderIP[:]...)
	dst = append(dst, a.TargetHW[:]...)
	dst = append(dst, a.TargetIP[:]...)
	return dst
}

// Serialize returns the ARP packet as a fresh slice.
func (a ARP) Serialize() []byte { return a.AppendTo(make([]byte, 0, 28)) }

// IPv4 is an IPv4 header plus payload (no options).
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      IP4
	Dst      IP4
	Payload  []byte
}

// DecodeIPv4 parses an IPv4 packet (options are skipped).
func DecodeIPv4(b []byte) (IPv4, error) {
	var p IPv4
	if len(b) < 20 {
		return p, fmt.Errorf("%w: ipv4 %d bytes", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return p, fmt.Errorf("%w: ip version %d", ErrBadFormat, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return p, fmt.Errorf("%w: ihl %d", ErrBadFormat, ihl)
	}
	p.TOS = b[1]
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		total = len(b)
	}
	p.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	p.Flags = uint8(ff >> 13)
	p.FragOff = ff & 0x1fff
	p.TTL = b[8]
	p.Protocol = b[9]
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	p.Payload = b[ihl:total]
	return p, nil
}

// AppendTo serializes the packet (header checksum computed) onto dst.
func (p IPv4) AppendTo(dst []byte) []byte {
	start := len(dst)
	total := 20 + len(p.Payload)
	dst = append(dst, 0x45, p.TOS)
	dst = binary.BigEndian.AppendUint16(dst, uint16(total))
	dst = binary.BigEndian.AppendUint16(dst, p.ID)
	dst = binary.BigEndian.AppendUint16(dst, uint16(p.Flags)<<13|p.FragOff&0x1fff)
	dst = append(dst, p.TTL, p.Protocol, 0, 0) // checksum placeholder
	dst = append(dst, p.Src[:]...)
	dst = append(dst, p.Dst[:]...)
	cs := Checksum(dst[start : start+20])
	binary.BigEndian.PutUint16(dst[start+10:start+12], cs)
	return append(dst, p.Payload...)
}

// Serialize returns the packet as a fresh slice.
func (p IPv4) Serialize() []byte {
	return p.AppendTo(make([]byte, 0, 20+len(p.Payload)))
}

// Checksum computes the RFC 1071 Internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TCP is a TCP header plus payload (no options preserved).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8 // FIN=1 SYN=2 RST=4 PSH=8 ACK=16
	Window  uint16
	Payload []byte
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
)

// DecodeTCP parses a TCP segment.
func DecodeTCP(b []byte) (TCP, error) {
	var t TCP
	if len(b) < 20 {
		return t, fmt.Errorf("%w: tcp %d bytes", ErrTruncated, len(b))
	}
	t.SrcPort = binary.BigEndian.Uint16(b[0:2])
	t.DstPort = binary.BigEndian.Uint16(b[2:4])
	t.Seq = binary.BigEndian.Uint32(b[4:8])
	t.Ack = binary.BigEndian.Uint32(b[8:12])
	off := int(b[12]>>4) * 4
	if off < 20 || off > len(b) {
		return t, fmt.Errorf("%w: tcp offset %d", ErrBadFormat, off)
	}
	t.Flags = b[13]
	t.Window = binary.BigEndian.Uint16(b[14:16])
	t.Payload = b[off:]
	return t, nil
}

// AppendTo serializes the segment onto dst (checksum left zero; the
// simulated dataplane does not verify it).
func (t TCP) AppendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, t.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, t.DstPort)
	dst = binary.BigEndian.AppendUint32(dst, t.Seq)
	dst = binary.BigEndian.AppendUint32(dst, t.Ack)
	dst = append(dst, 5<<4, t.Flags)
	dst = binary.BigEndian.AppendUint16(dst, t.Window)
	dst = append(dst, 0, 0, 0, 0) // checksum, urgent
	return append(dst, t.Payload...)
}

// Serialize returns the segment as a fresh slice.
func (t TCP) Serialize() []byte {
	return t.AppendTo(make([]byte, 0, 20+len(t.Payload)))
}

// UDP is a UDP header plus payload.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

// DecodeUDP parses a UDP datagram.
func DecodeUDP(b []byte) (UDP, error) {
	var u UDP
	if len(b) < 8 {
		return u, fmt.Errorf("%w: udp %d bytes", ErrTruncated, len(b))
	}
	u.SrcPort = binary.BigEndian.Uint16(b[0:2])
	u.DstPort = binary.BigEndian.Uint16(b[2:4])
	length := int(binary.BigEndian.Uint16(b[4:6]))
	if length < 8 || length > len(b) {
		length = len(b)
	}
	u.Payload = b[8:length]
	return u, nil
}

// AppendTo serializes the datagram onto dst.
func (u UDP) AppendTo(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, u.SrcPort)
	dst = binary.BigEndian.AppendUint16(dst, u.DstPort)
	dst = binary.BigEndian.AppendUint16(dst, uint16(8+len(u.Payload)))
	dst = append(dst, 0, 0)
	return append(dst, u.Payload...)
}

// Serialize returns the datagram as a fresh slice.
func (u UDP) Serialize() []byte {
	return u.AppendTo(make([]byte, 0, 8+len(u.Payload)))
}

// ICMP echo types.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

// ICMPEcho is an ICMP echo request/reply.
type ICMPEcho struct {
	Type    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

// DecodeICMPEcho parses an ICMP echo message.
func DecodeICMPEcho(b []byte) (ICMPEcho, error) {
	var ic ICMPEcho
	if len(b) < 8 {
		return ic, fmt.Errorf("%w: icmp %d bytes", ErrTruncated, len(b))
	}
	ic.Type = b[0]
	ic.ID = binary.BigEndian.Uint16(b[4:6])
	ic.Seq = binary.BigEndian.Uint16(b[6:8])
	ic.Payload = b[8:]
	return ic, nil
}

// AppendTo serializes the message (with checksum) onto dst.
func (ic ICMPEcho) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, ic.Type, 0, 0, 0)
	dst = binary.BigEndian.AppendUint16(dst, ic.ID)
	dst = binary.BigEndian.AppendUint16(dst, ic.Seq)
	dst = append(dst, ic.Payload...)
	cs := Checksum(dst[start:])
	binary.BigEndian.PutUint16(dst[start+2:start+4], cs)
	return dst
}

// Serialize returns the message as a fresh slice.
func (ic ICMPEcho) Serialize() []byte {
	return ic.AppendTo(make([]byte, 0, 8+len(ic.Payload)))
}
