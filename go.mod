module yanc

go 1.22
