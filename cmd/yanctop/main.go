// Command yanctop regenerates the paper's figures from a live yanc file
// system: Figure 2 (the /net hierarchy) and Figure 3 (the switch and
// flow object representations). It builds the same example state the
// figures show — switches sw1 and sw2, views http and management-net, an
// arp_flow — and prints the trees.
//
// Usage:
//
//	yanctop            # Figure 2: the /net hierarchy
//	yanctop -objects   # Figure 3: switch and flow representations
//	yanctop -stats     # walk /.proc and print every metrics file
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"yanc"
	"yanc/internal/openflow"
)

func main() {
	objects := flag.Bool("objects", false, "print the switch/flow object representations (Figure 3)")
	stats := flag.Bool("stats", false, "walk /.proc and print the controller's metrics files")
	flag.Parse()

	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatalf("yanctop: %v", err)
	}
	defer ctrl.Close()
	p := ctrl.Root()
	for _, sw := range []string{"sw1", "sw2"} {
		if err := p.Mkdir("/switches/"+sw, 0o755); err != nil {
			log.Fatalf("yanctop: %v", err)
		}
	}
	for _, v := range []string{"http", "management-net"} {
		if err := p.Mkdir("/views/"+v, 0o755); err != nil {
			log.Fatalf("yanctop: %v", err)
		}
	}
	m, err := yanc.ParseMatch("dl_type=0x0806,dl_src=00:00:00:00:00:01")
	if err != nil {
		log.Fatalf("yanctop: %v", err)
	}
	if _, err := yanc.WriteFlow(p, "/switches/sw1/flows/arp_flow", yanc.FlowSpec{
		Match:       m,
		Priority:    10,
		IdleTimeout: 60,
		Actions:     []yanc.Action{yanc.Output(2)},
	}); err != nil {
		log.Fatalf("yanctop: %v", err)
	}

	sh := ctrl.Shell(os.Stdout)
	if *stats {
		// Exercise the event data path so /.proc/events shows live
		// counters: two subscribers, one coalesced batch of packet-ins.
		for _, app := range []string{"router", "monitor"} {
			if _, _, err := yanc.Subscribe(p, "/", app); err != nil {
				log.Fatalf("yanctop: %v", err)
			}
		}
		batch := make([]*openflow.PacketIn, 8)
		for i := range batch {
			batch[i] = &openflow.PacketIn{InPort: 1, TotalLen: 64, Data: make([]byte, 64)}
		}
		if err := ctrl.FS().DeliverPacketInBatch("/", "sw1", batch); err != nil {
			log.Fatalf("yanctop: %v", err)
		}
		fmt.Println("# /net/.proc: controller metrics exposed as files")
		if err := printProc(p, "/.proc"); err != nil {
			log.Fatalf("yanctop: %v", err)
		}
		return
	}
	if *objects {
		fmt.Println("# Figure 3: partial representations of a yanc switch and flow")
		fmt.Println("## sw1")
		if err := sh.Run("tree /switches/sw1"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("## arp_flow")
		if err := sh.Run("tree /switches/sw1/flows/arp_flow"); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("# Figure 2: the yanc file system hierarchy (mounted on /net)")
	if err := sh.Run("tree /"); err != nil {
		log.Fatal(err)
	}
}

// printProc walks the metrics subtree depth-first, printing each file's
// path followed by its indented contents — the `grep -r`-style dump an
// operator would run against a real procfs.
func printProc(p *yanc.Proc, dir string) error {
	entries, err := p.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		path := dir + "/" + e.Name
		if e.IsDir() {
			if err := printProc(p, path); err != nil {
				return err
			}
			continue
		}
		s, err := p.ReadString(path)
		if err != nil {
			return err
		}
		fmt.Printf("== %s\n", path)
		for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
			fmt.Printf("   %s\n", line)
		}
	}
	return nil
}
