// Command yanctop regenerates the paper's figures from a live yanc file
// system: Figure 2 (the /net hierarchy) and Figure 3 (the switch and
// flow object representations). It builds the same example state the
// figures show — switches sw1 and sw2, views http and management-net, an
// arp_flow — and prints the trees.
//
// Usage:
//
//	yanctop            # Figure 2: the /net hierarchy
//	yanctop -objects   # Figure 3: switch and flow representations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"yanc"
)

func main() {
	objects := flag.Bool("objects", false, "print the switch/flow object representations (Figure 3)")
	flag.Parse()

	ctrl, err := yanc.NewController()
	if err != nil {
		log.Fatalf("yanctop: %v", err)
	}
	defer ctrl.Close()
	p := ctrl.Root()
	for _, sw := range []string{"sw1", "sw2"} {
		if err := p.Mkdir("/switches/"+sw, 0o755); err != nil {
			log.Fatalf("yanctop: %v", err)
		}
	}
	for _, v := range []string{"http", "management-net"} {
		if err := p.Mkdir("/views/"+v, 0o755); err != nil {
			log.Fatalf("yanctop: %v", err)
		}
	}
	m, err := yanc.ParseMatch("dl_type=0x0806,dl_src=00:00:00:00:00:01")
	if err != nil {
		log.Fatalf("yanctop: %v", err)
	}
	if _, err := yanc.WriteFlow(p, "/switches/sw1/flows/arp_flow", yanc.FlowSpec{
		Match:       m,
		Priority:    10,
		IdleTimeout: 60,
		Actions:     []yanc.Action{yanc.Output(2)},
	}); err != nil {
		log.Fatalf("yanctop: %v", err)
	}

	sh := ctrl.Shell(os.Stdout)
	if *objects {
		fmt.Println("# Figure 3: partial representations of a yanc switch and flow")
		fmt.Println("## sw1")
		if err := sh.Run("tree /switches/sw1"); err != nil {
			log.Fatal(err)
		}
		fmt.Println("## arp_flow")
		if err := sh.Run("tree /switches/sw1/flows/arp_flow"); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println("# Figure 2: the yanc file system hierarchy (mounted on /net)")
	if err := sh.Run("tree /"); err != nil {
		log.Fatal(err)
	}
}
