// Command yancload is the city-scale churn harness: it spins up
// thousands of simulated switches against an in-process controller over
// real TCP, churns flow directories (create / modify / delete, with a
// configurable mix and rate), and tracks every create→installed latency
// — from the WriteFlow call to the moment the switch applies the
// FlowAdd — in a log-scale tracking histogram.
//
// The op stream is a single seeded RNG, so a run is reproducible op for
// op; -det additionally injects a counting clock so the whole engine
// runs without reading the wall clock (the yancload_test.go regression
// pins exact op counts and zero lost installs in this mode).
//
// The live progress line is deliberately dogfood: the engine publishes
// its counters at /.proc/load/progress inside the controller file
// system, and yancload reads them back through file I/O like any shell
// or remote mount would.
//
// Usage:
//
//	yancload -switches 1024 -flows 102400 -churn 51200
//	yancload -switches 64 -flows 10000 -ratio 2:1:1 -rate 5000 -json out.json
//	yancload -switches 64 -flows 10000 -fastpath   # libyanc ring write path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"yanc/internal/benchutil"
	"yanc/internal/openflow"
	"yanc/internal/procfs"
	"yanc/internal/yancfs"
)

// report is the final JSON document: the engine's accounting plus the
// run parameters and derived rates.
type report struct {
	benchutil.ChurnResult
	Seed          int64                `json:"seed"`
	Ratio         string               `json:"ratio"`
	Deterministic bool                 `json:"deterministic"`
	Fastpath      bool                 `json:"fastpath"`
	FlowsPerSec   float64              `json:"create_phase_flows_per_sec,omitempty"`
	ChurnPerSec   float64              `json:"churn_ops_per_sec,omitempty"`
	Latency       benchutil.HistReport `json:"latency"`
}

func main() {
	switches := flag.Int("switches", 64, "simulated switches")
	flows := flag.Int("flows", 10000, "flow dirs created before churning")
	churn := flag.Int("churn", -1, "churn ops (default: flows/2)")
	ratio := flag.String("ratio", "2:1:1", "churn mix create:modify:delete")
	rate := flag.Int("rate", 0, "approximate churn ops/sec cap (0 = unthrottled)")
	seed := flag.Int64("seed", 1, "op-stream RNG seed")
	ofv := flag.String("of", "1.3", "OpenFlow version (1.0 or 1.3)")
	jsonOut := flag.String("json", "", "also write the JSON report to this file")
	det := flag.Bool("det", false, "deterministic mode: injected counting clock, no live progress")
	quiet := flag.Bool("quiet", false, "suppress the live progress line")
	fastpath := flag.Bool("fastpath", false, "drive the op stream through the libyanc flow ring instead of per-field file I/O")
	flag.Parse()

	r, err := parseRatio(*ratio)
	if err != nil {
		log.Fatal(err)
	}
	version := openflow.Version13
	switch *ofv {
	case "1.0":
		version = openflow.Version10
	case "1.3":
	default:
		log.Fatalf("yancload: unknown OpenFlow version %q", *ofv)
	}
	if *churn < 0 {
		*churn = *flows / 2
	}
	cfg := benchutil.ChurnConfig{
		Switches: *switches, Flows: *flows, ChurnOps: *churn,
		Ratio: r, Seed: *seed, Version: version, Rate: *rate,
		Fastpath: *fastpath,
	}
	rep, err := runLoad(cfg, *det, !*det && !*quiet, os.Stdout)
	if err != nil {
		log.Fatalf("yancload: %v", err)
	}
	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Lost > 0 {
		log.Fatalf("yancload: %d installs lost", rep.Lost)
	}
}

// runLoad drives one churn run and writes the JSON report to out.
// det injects the counting clock; live draws the progress line on
// stderr from /.proc/load/progress.
func runLoad(cfg benchutil.ChurnConfig, det, live bool, out io.Writer) (*report, error) {
	if det {
		cfg.Clock = countingClock()
	}
	var lfs atomic.Pointer[yancfs.FS]
	prevExpose := cfg.Expose
	cfg.Expose = func(y *yancfs.FS) {
		lfs.Store(y)
		if prevExpose != nil {
			prevExpose(y)
		}
	}
	stopUI := make(chan struct{})
	uiDone := make(chan struct{})
	if live {
		go func() {
			defer close(uiDone)
			t := time.NewTicker(500 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopUI:
					return
				case <-t.C:
					y := lfs.Load()
					if y == nil {
						continue
					}
					s, err := y.Root().ReadString(procfs.LoadDir + "/progress")
					if err != nil {
						continue
					}
					fmt.Fprintf(os.Stderr, "\r%-110s", compact(s))
				}
			}
		}()
	} else {
		close(uiDone)
	}
	res, err := benchutil.RunChurn(cfg)
	close(stopUI)
	<-uiDone
	if live {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return nil, err
	}
	rep := &report{
		ChurnResult: *res, Seed: cfg.Seed,
		Ratio:         fmt.Sprintf("%d:%d:%d", cfg.Ratio[0], cfg.Ratio[1], cfg.Ratio[2]),
		Deterministic: det,
		Fastpath:      cfg.Fastpath,
		Latency:       res.Hist.Report(),
	}
	if !det {
		if s := res.CreatePhase.Seconds(); s > 0 {
			rep.FlowsPerSec = float64(res.Flows) / s
		}
		if s := res.ChurnPhase.Seconds(); s > 0 && res.ChurnOps > 0 {
			rep.ChurnPerSec = float64(res.ChurnOps) / s
		}
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	if _, err := out.Write(append(b, '\n')); err != nil {
		return nil, err
	}
	return rep, nil
}

// countingClock is the deterministic clock for -det runs: every reading
// is one nanosecond after the previous one, so the engine never touches
// the wall clock and latency samples stay strictly positive.
func countingClock() func() time.Time {
	var n atomic.Int64
	return func() time.Time { return time.Unix(0, n.Add(1)) }
}

// parseRatio parses "c:m:d" into churn-mix weights.
func parseRatio(s string) ([3]int, error) {
	parts := strings.Split(s, ":")
	var r [3]int
	if len(parts) != 3 {
		return r, fmt.Errorf("yancload: ratio must be create:modify:delete, got %q", s)
	}
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return r, fmt.Errorf("yancload: bad ratio component %q", p)
		}
		r[i] = n
	}
	if r[0] <= 0 {
		return r, fmt.Errorf("yancload: create weight must be positive in %q", s)
	}
	return r, nil
}

// compact flattens the multi-line /.proc/load/progress content into the
// one-line live display.
func compact(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", f[0], f[1])
	}
	return b.String()
}
