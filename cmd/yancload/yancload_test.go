package main

import (
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"yanc/internal/benchutil"
	"yanc/internal/procfs"
	"yanc/internal/yancfs"
)

// replayOps mirrors the engine's op-stream derivation exactly: same
// seed, same draw order, same live-set bookkeeping. It is the oracle
// for the exact op counts a deterministic run must produce.
func replayOps(flows, churnOps int, ratio [3]int, seed int64) (creates, modifies, deletes int) {
	rng := rand.New(rand.NewSource(seed))
	liveN := flows
	creates = flows
	w := ratio[0] + ratio[1] + ratio[2]
	for op := 0; op < churnOps; op++ {
		r := rng.Intn(w)
		switch {
		case r < ratio[0] || liveN == 0:
			creates++
			liveN++
		case r < ratio[0]+ratio[1]:
			rng.Intn(liveN)
			modifies++
		default:
			rng.Intn(liveN)
			liveN--
			deletes++
		}
	}
	return creates, modifies, deletes
}

// TestDeterministicChurn pins the satellite contract: at 16 switches x
// 1k flows in -det mode, the op stream matches the seeded oracle
// exactly, nothing is lost, every latency sample is accounted for, and
// a second run with the same config reproduces the same counts.
func TestDeterministicChurn(t *testing.T) {
	const (
		switches = 16
		flows    = 1000
		churnOps = 1000
		seed     = 42
	)
	ratio := [3]int{2, 1, 1}
	var fs atomic.Pointer[yancfs.FS]
	run := func() *report {
		cfg := benchutil.ChurnConfig{
			Switches: switches, Flows: flows, ChurnOps: churnOps,
			Ratio: ratio, Seed: seed,
			Expose: func(y *yancfs.FS) { fs.Store(y) },
		}
		rep, err := runLoad(cfg, true, false, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	a := run()
	wc, wm, wd := replayOps(flows, churnOps, ratio, seed)
	if a.Creates != wc || a.Modifies != wm || a.Deletes != wd {
		t.Fatalf("op counts diverge from the seeded oracle: got %d/%d/%d, want %d/%d/%d",
			a.Creates, a.Modifies, a.Deletes, wc, wm, wd)
	}
	if got := a.Creates + a.Modifies + a.Deletes; got != flows+churnOps {
		t.Fatalf("total ops %d, want %d", got, flows+churnOps)
	}
	if a.Lost != 0 {
		t.Fatalf("%d installs lost (resolved %d, aborted %d of %d writes)",
			a.Lost, a.Resolved, a.Aborted, a.Creates+a.Modifies)
	}
	if a.Resolved+a.Aborted != uint64(a.Creates+a.Modifies) {
		t.Fatalf("accounting leak: resolved %d + aborted %d != creates %d + modifies %d",
			a.Resolved, a.Aborted, a.Creates, a.Modifies)
	}
	if a.Latency.Count != a.Resolved {
		t.Fatalf("histogram count %d != resolved %d", a.Latency.Count, a.Resolved)
	}
	if a.Resolved == 0 || a.Installs == 0 {
		t.Fatalf("no installs observed (installs %d, resolved %d)", a.Installs, a.Resolved)
	}
	if a.Latency.MinNS <= 0 {
		t.Fatalf("counting clock produced a non-positive latency sample: min %dns", a.Latency.MinNS)
	}

	// The progress synthetic is the run's observable face: after the
	// run it must report the done phase with nothing pending.
	y := fs.Load()
	if y == nil {
		t.Fatal("Expose hook never ran")
	}
	s, err := y.Root().ReadString(procfs.LoadDir + "/progress")
	if err != nil {
		t.Fatalf("read %s/progress: %v", procfs.LoadDir, err)
	}
	for _, want := range []string{"phase    done", "pending  0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("progress file missing %q:\n%s", want, s)
		}
	}

	// Reproducibility: the same config yields the same op stream.
	b := run()
	if b.Creates != a.Creates || b.Modifies != a.Modifies || b.Deletes != a.Deletes || b.Lost != 0 {
		t.Fatalf("second run diverged: %d/%d/%d lost=%d vs %d/%d/%d",
			b.Creates, b.Modifies, b.Deletes, b.Lost, a.Creates, a.Modifies, a.Deletes)
	}
}

// TestDeterministicChurnFastpath runs the same seeded op stream through
// the libyanc flow ring (-fastpath): op counts still match the oracle,
// the conservation accounting still balances, nothing is lost, and the
// ring's telemetry files are live in the controller's /.proc.
func TestDeterministicChurnFastpath(t *testing.T) {
	const (
		switches = 16
		flows    = 1000
		churnOps = 1000
		seed     = 42
	)
	ratio := [3]int{2, 1, 1}
	var fs atomic.Pointer[yancfs.FS]
	cfg := benchutil.ChurnConfig{
		Switches: switches, Flows: flows, ChurnOps: churnOps,
		Ratio: ratio, Seed: seed, Fastpath: true,
		Expose: func(y *yancfs.FS) { fs.Store(y) },
	}
	rep, err := runLoad(cfg, true, false, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wc, wm, wd := replayOps(flows, churnOps, ratio, seed)
	if rep.Creates != wc || rep.Modifies != wm || rep.Deletes != wd {
		t.Fatalf("fastpath op counts diverge from the seeded oracle: got %d/%d/%d, want %d/%d/%d",
			rep.Creates, rep.Modifies, rep.Deletes, wc, wm, wd)
	}
	if rep.Lost != 0 {
		t.Fatalf("%d installs lost (resolved %d, aborted %d of %d writes)",
			rep.Lost, rep.Resolved, rep.Aborted, rep.Creates+rep.Modifies)
	}
	if rep.Resolved+rep.Aborted != uint64(rep.Creates+rep.Modifies) {
		t.Fatalf("accounting leak: resolved %d + aborted %d != creates %d + modifies %d",
			rep.Resolved, rep.Aborted, rep.Creates, rep.Modifies)
	}
	if !rep.Fastpath {
		t.Fatal("report does not record fastpath mode")
	}
	y := fs.Load()
	if y == nil {
		t.Fatal("Expose hook never ran")
	}
	s, err := y.Root().ReadString(procfs.LibyancDir + "/ring")
	if err != nil {
		t.Fatalf("read %s/ring: %v", procfs.LibyancDir, err)
	}
	for _, want := range []string{"submitted", "completed", "installed"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ring telemetry missing %q:\n%s", want, s)
		}
	}
	if b, err := y.Root().ReadString(procfs.LibyancDir + "/batch"); err != nil || !strings.Contains(b, "drains") {
		t.Fatalf("batch telemetry: %q, %v", b, err)
	}
}

func TestParseRatio(t *testing.T) {
	if r, err := parseRatio("2:1:1"); err != nil || r != [3]int{2, 1, 1} {
		t.Fatalf("parseRatio(2:1:1) = %v, %v", r, err)
	}
	for _, bad := range []string{"", "1:2", "1:2:3:4", "0:1:1", "a:b:c", "-1:1:1"} {
		if _, err := parseRatio(bad); err == nil {
			t.Fatalf("parseRatio(%q) accepted", bad)
		}
	}
}
