// Command yancsh is an administrator's shell for a yanc network. It
// mounts a controller's file system over the distributed-FS protocol
// (§6) — the controller may be on another machine — and runs the §5.4
// coreutils against it: the full "Linux is the network operating system"
// experience from a remote box.
//
// Usage:
//
//	yancsh -connect 127.0.0.1:7070                 # interactive REPL
//	yancsh -connect 127.0.0.1:7070 -c "ls -l /switches"
//	yancsh -connect 127.0.0.1:7070 -eventual       # batched writes
//	yancsh -connect 127.0.0.1:7070 -reconnect      # survive controller restarts
//
// Start a controller exporting its fs with: yancd -dfs :7070
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"yanc/internal/dfs"
	"yanc/internal/shell"
	"yanc/internal/vfs"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:7070", "controller dfs address")
	command := flag.String("c", "", "run one command and exit")
	eventual := flag.Bool("eventual", false, "mount with eventual consistency")
	uid := flag.Int("uid", 0, "credential uid")
	gid := flag.Int("gid", 0, "credential gid")
	rpcTimeout := flag.Duration("rpc-timeout", dfs.DefaultCallTimeout, "per-RPC deadline (negative disables)")
	reconnect := flag.Bool("reconnect", false, "redial the controller with backoff if the mount drops")
	retryMin := flag.Duration("retry-min", dfs.DefaultRetryMin, "initial reconnect delay")
	retryMax := flag.Duration("retry-max", dfs.DefaultRetryMax, "maximum reconnect delay")
	flag.Parse()

	mode := dfs.Strict
	if *eventual {
		mode = dfs.Eventual
	}
	client, err := dfs.MountOptions(*connect, vfs.Cred{UID: *uid, GID: *gid}, mode, dfs.Options{
		CallTimeout: *rpcTimeout,
		Reconnect:   *reconnect,
		RetryMin:    *retryMin,
		RetryMax:    *retryMax,
	})
	if err != nil {
		log.Fatalf("yancsh: %v", err)
	}
	defer client.Close() //yancvet:allow errdrop process is exiting

	env := shell.NewEnv(client, os.Stdout)
	if *command != "" {
		if err := env.Run(*command); err != nil {
			log.Fatalf("yancsh: %v", err)
		}
		if err := client.Flush(); err != nil {
			log.Fatalf("yancsh: flush: %v", err)
		}
		return
	}

	fmt.Printf("yancsh: mounted %s (%s consistency, uid %d)\n", *connect, mode, *uid)
	fmt.Printf("commands: %s\n", strings.Join(shell.Commands(), " "))
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s $ ", env.Cwd)
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if err := env.Run(line); err != nil {
			fmt.Fprintf(os.Stderr, "yancsh: %v\n", err)
		}
	}
	if err := client.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "yancsh: flush: %v\n", err)
	}
}
