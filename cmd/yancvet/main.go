// Command yancvet runs the yanc static-analysis suite (lockorder,
// lockpair, snapshotpub, clockban, atomicfield, errdrop, hotalloc,
// txescape, waitgraph) over Go packages.
//
// Usage:
//
//	go run ./cmd/yancvet ./...          # analyze the module
//	go run ./cmd/yancvet -json ./...    # machine-readable diagnostics
//
// The binary is double-faced. Invoked by a human with package patterns
// it re-executes itself through the go command:
//
//	go vet -vettool=<self> <patterns>
//
// which gives it accurate package loading, export data, and cross-
// package fact propagation for free, fully offline. Invoked by the go
// command (with -V=full, -flags, or a unit .cfg file) it speaks the
// x/tools unitchecker protocol.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	yancanalysis "yanc/internal/analysis"
)

func main() {
	if unitcheckerInvocation(os.Args[1:]) {
		unitchecker.Main(yancanalysis.All()...) // does not return
	}
	os.Exit(orchestrate(os.Args[1:]))
}

// unitcheckerInvocation reports whether the go command is driving us:
// it probes with -V=full and -flags, then runs one <unit>.cfg per
// package. Humans pass package patterns instead.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags":
			return true
		case strings.HasSuffix(a, ".cfg"):
			return true
		}
	}
	return false
}

// orchestrate re-runs the suite via `go vet -vettool=<self>` so the go
// command handles package loading and fact plumbing.
func orchestrate(args []string) int {
	fs := flag.NewFlagSet("yancvet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as JSON (go vet -json format)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: yancvet [-json] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "yancvet: cannot locate own binary: %v\n", err)
		return 2
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	if *jsonOut {
		vetArgs = append(vetArgs, "-json")
	}
	vetArgs = append(vetArgs, patterns...)
	cmd := exec.Command("go", vetArgs...)
	var jsonBuf bytes.Buffer
	if *jsonOut {
		// go vet -json exits zero even when it finds problems (the output
		// is for tooling); yancvet still fails the build when any
		// diagnostic was emitted so the CI leg stays blocking.
		cmd.Stdout = io.MultiWriter(os.Stdout, &jsonBuf)
		cmd.Stderr = io.MultiWriter(os.Stderr, &jsonBuf)
	} else {
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
	}
	cmd.Env = os.Environ()
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "yancvet: %v\n", err)
		return 2
	}
	if *jsonOut && bytes.Contains(jsonBuf.Bytes(), []byte(`"posn"`)) {
		return 1
	}
	return 0
}
