// Command yancd is the yanc controller daemon: it mounts the yanc file
// system (in-process), listens for OpenFlow switch connections, and runs
// the core system applications — topology discovery, the reactive
// router, and the ARP responder. Optionally it exports the file system
// over the distributed-FS protocol so remote machines can mount it (§6).
//
// Usage:
//
//	yancd [-listen :6633] [-dfs :7070] [-interval 2s] [-verbose]
//	      [-echo-interval 5s] [-echo-misses 3]
//	      [-dfs-replicas host1:7070,host2:7070,host3:7070 -dfs-id 0]
//
// With -dfs-replicas, the daemon serves its file system as one member
// of a replicated dfs group: the members elect a lease-bounded leader,
// strict writes commit on a majority, and clients mounted with
// yanc.MountDFSReplicas fail over between members.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"yanc"
)

func main() {
	listen := flag.String("listen", ":6633", "OpenFlow listen address")
	dfsAddr := flag.String("dfs", "", "export the file system over TCP at this address (empty = off)")
	dfsID := flag.Int("dfs-id", 0, "this member's index into -dfs-replicas")
	dfsReplicas := flag.String("dfs-replicas", "", "comma-separated member addresses of a replicated dfs group (empty = standalone -dfs export)")
	interval := flag.Duration("interval", 2*time.Second, "topology discovery interval")
	verbose := flag.Bool("verbose", false, "log driver activity")
	echoInterval := flag.Duration("echo-interval", 5*time.Second, "switch liveness probe interval (0 disables)")
	echoMisses := flag.Int("echo-misses", 3, "unanswered probes before a switch is declared disconnected")
	flag.Parse()

	ctrl, err := yanc.NewController(yanc.WithEchoProbes(*echoInterval, *echoMisses))
	if err != nil {
		log.Fatalf("yancd: %v", err)
	}
	defer ctrl.Close()
	if *verbose {
		ctrl.Driver().VerboseLog()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("yancd: listen: %v", err)
	}
	log.Printf("yancd: OpenFlow on %s", ln.Addr())
	go func() {
		if err := ctrl.Serve(ln); err != nil {
			log.Printf("yancd: serve: %v", err)
		}
	}()

	switch {
	case *dfsReplicas != "":
		addrs := strings.Split(*dfsReplicas, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		bound, rep, err := ctrl.ExportDFSReplica(yanc.ReplicaOptions{ID: *dfsID, Addrs: addrs})
		if err != nil {
			log.Fatalf("yancd: dfs replica: %v", err)
		}
		defer rep.Close()
		log.Printf("yancd: distributed fs replica %d/%d on %s", *dfsID, len(addrs), bound)
	case *dfsAddr != "":
		bound, srv, err := ctrl.ExportDFS(*dfsAddr)
		if err != nil {
			log.Fatalf("yancd: dfs export: %v", err)
		}
		defer srv.Close()
		log.Printf("yancd: distributed fs exported on %s", bound)
	}

	p := ctrl.Root()
	rt := yanc.NewRouter(p, "/")
	if err := rt.Start(); err != nil {
		log.Fatalf("yancd: router: %v", err)
	}
	defer rt.Stop()
	ad := yanc.NewARPd(p, "/")
	if err := ad.Start(); err != nil {
		log.Fatalf("yancd: arpd: %v", err)
	}
	defer ad.Stop()
	td := yanc.NewTopod(p, "/")
	go func() {
		ticker := time.NewTicker(*interval)
		defer ticker.Stop()
		for range ticker.C {
			if err := td.DiscoverOnce(); err != nil {
				log.Printf("yancd: discovery: %v", err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	installs, floods := rt.Stats()
	fmt.Printf("yancd: shutting down (router installed %d paths, flooded %d)\n", installs, floods)
}
