// Command ofswitchd runs a simulated OpenFlow network and connects its
// switches to a controller — the stand-in for a rack of hardware
// switches (or a Mininet) in this reproduction. It builds a linear or
// ring topology with one host per switch, dials the controller, and can
// generate test traffic so a running yancd has something to react to.
//
// Usage:
//
//	ofswitchd [-controller 127.0.0.1:6633] [-topo linear] [-switches 3]
//	          [-proto of10|of13] [-traffic 0] [-seed-hosts]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"yanc/internal/backoff"
	"yanc/internal/openflow"
	"yanc/internal/switchsim"
)

func main() {
	controller := flag.String("controller", "127.0.0.1:6633", "controller address")
	topo := flag.String("topo", "linear", "topology: linear or ring")
	k := flag.Int("switches", 3, "number of switches")
	proto := flag.String("proto", "of10", "protocol version: of10 or of13")
	traffic := flag.Int("traffic", 0, "pings per second between random host pairs (0 = none)")
	retryMin := flag.Duration("retry-min", 100*time.Millisecond, "initial controller reconnect delay")
	retryMax := flag.Duration("retry-max", 10*time.Second, "maximum controller reconnect delay")
	flag.Parse()

	version := openflow.Version10
	if *proto == "of13" {
		version = openflow.Version13
	}
	var n *switchsim.Network
	var hosts []*switchsim.Host
	switch *topo {
	case "linear":
		n, hosts = switchsim.BuildLinear(*k, version)
	case "ring":
		n, hosts = switchsim.BuildRing(*k, version)
	default:
		log.Fatalf("ofswitchd: unknown topology %q", *topo)
	}
	// Each switch maintains its control channel forever, redialing with
	// capped exponential backoff (and jitter, so a controller restart does
	// not trigger a synchronized reconnect stampede from the whole rack).
	pol := backoff.Policy{Min: *retryMin, Max: *retryMax}
	for _, sw := range n.Switches() {
		go sw.DialRetry(*controller, pol, nil, log.Printf)
	}
	fmt.Printf("ofswitchd: %d switches (%s, %s) dialing %s\n", *k, *topo, *proto, *controller)

	if *traffic > 0 {
		interval := time.Second / time.Duration(*traffic)
		seq := uint16(0)
		i := 0
		for {
			time.Sleep(interval)
			src := hosts[i%len(hosts)]
			dst := hosts[(i+1)%len(hosts)]
			seq++
			src.Ping(dst, seq)
			i++
		}
	}
	select {}
}
