// Package yanc is the public API of the yanc controller platform — the
// reproduction of "Applying Operating System Principles to SDN Controller
// Design" (Monaco, Michel, Keller; HotNets 2013).
//
// yanc exposes network configuration and state as a file system:
// applications are ordinary processes that read and write files, watch
// directories, and consume per-application event buffers. A Controller
// bundles the pieces a deployment needs: the yanc file system, the
// OpenFlow drivers (1.0 and 1.3), the namespace manager for view
// isolation, and hooks for the fastpath library and the distributed
// file-system layer.
//
// Quickstart:
//
//	ctrl, _ := yanc.NewController()
//	ln, _ := net.Listen("tcp", ":6633")
//	go ctrl.Serve(ln)            // switches connect here
//	p := ctrl.Root()             // file I/O from here on
//	p.ReadDir("/switches")
package yanc

import (
	"io"
	"net"
	"time"

	"yanc/internal/apps"
	"yanc/internal/dfs"
	"yanc/internal/driver"
	"yanc/internal/ethernet"
	"yanc/internal/libyanc"
	"yanc/internal/middlebox"
	"yanc/internal/namespace"
	"yanc/internal/openflow"
	"yanc/internal/procfs"
	"yanc/internal/shell"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// Re-exported types so applications only import the yanc package.
type (
	// Proc is a process context on the file system (credential + root).
	Proc = vfs.Proc
	// Cred is a uid/gid credential.
	Cred = vfs.Cred
	// Stat describes a file-system node.
	Stat = vfs.Stat
	// DirEntry is one directory listing entry.
	DirEntry = vfs.DirEntry
	// Watch is an inotify-style subscription.
	Watch = vfs.Watch
	// Event is one file-system change notification.
	Event = vfs.Event
	// FileMode holds permission bits.
	FileMode = vfs.FileMode
	// FlowSpec is the in-memory form of a flow directory.
	FlowSpec = yancfs.FlowSpec
	// Match is a version-neutral OpenFlow match.
	Match = openflow.Match
	// Action is a version-neutral OpenFlow action.
	Action = openflow.Action
	// Namespace confines an application to a view subtree.
	Namespace = namespace.Namespace
	// Limits configures a control group.
	Limits = namespace.Limits
)

// Event mask bits (inotify analog).
const (
	OpCreate     = vfs.OpCreate
	OpWrite      = vfs.OpWrite
	OpRemove     = vfs.OpRemove
	OpRename     = vfs.OpRename
	OpChmod      = vfs.OpChmod
	OpCloseWrite = vfs.OpCloseWrite
	OpOverflow   = vfs.OpOverflow
	OpAll        = vfs.OpAll
)

// Root is the superuser credential.
var Root = vfs.Root

// Controller is a running yanc instance: the file system plus its system
// services.
type Controller struct {
	y    *yancfs.FS
	d    *driver.Driver
	ns   *namespace.Manager
	proc *procfs.Tree
}

// Option configures a Controller.
type Option func(*Controller)

// WithMaxProtocolVersion caps the OpenFlow version the drivers offer
// (openflow.Version10 or openflow.Version13).
func WithMaxProtocolVersion(v uint8) Option {
	return func(c *Controller) { c.d.MaxVersion = v }
}

// WithSwitchNamer overrides how datapath ids map to switch directory
// names (default "sw<dpid>").
func WithSwitchNamer(name func(dpid uint64) string) Option {
	return func(c *Controller) { c.d.NameFor = name }
}

// WithEchoProbes tunes the driver's liveness probing: each switch is
// sent an OpenFlow echo request every interval, and the connection is
// torn down — flipping the switch's status file to "disconnected" —
// after missThreshold consecutive unanswered probes. This catches the
// failures TCP alone never reports (a silent partition, a wedged
// datapath). interval <= 0 disables probing.
func WithEchoProbes(interval time.Duration, missThreshold int) Option {
	return func(c *Controller) {
		c.d.EchoInterval = interval
		c.d.EchoMisses = missThreshold
	}
}

// WithEventBufferDepth bounds the pending packet-in messages per
// subscriber event buffer. When a delivery finds a buffer at the bound it
// drops the buffer's oldest quarter and refreshes the buffer's overflow
// marker, so one stuck application cannot wedge delivery to the rest.
// n <= 0 restores the default (yancfs.DefaultEventBufferDepth).
func WithEventBufferDepth(n int) Option {
	return func(c *Controller) { c.y.SetEventBufferDepth(n) }
}

// NewController creates a controller with an empty /net hierarchy.
func NewController(opts ...Option) (*Controller, error) {
	y, err := yancfs.New()
	if err != nil {
		return nil, err
	}
	c := &Controller{y: y, d: driver.New(y)}
	c.ns = namespace.NewManager(y.VFS())
	c.proc, err = procfs.Install(y.VFS())
	if err != nil {
		return nil, err
	}
	c.proc.BindEvents(y)
	c.d.ProcDir = procfs.DriverDir
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Metrics returns the controller's .proc metrics subtree handle — use it
// to bind additional dfs exports or mounts into the observability files.
func (c *Controller) Metrics() *procfs.Tree { return c.proc }

// Root returns a superuser process context — the administrator's shell.
func (c *Controller) Root() *Proc { return c.y.Root() }

// Proc returns a process context with the given credential.
func (c *Controller) Proc(cred Cred) *Proc { return c.y.Proc(cred) }

// FS returns the yanc file system (for packages that need schema-level
// helpers).
func (c *Controller) FS() *yancfs.FS { return c.y }

// Serve accepts switch control connections on the listener (the
// controller side of OpenFlow) until it closes.
func (c *Controller) Serve(l net.Listener) error { return c.d.Serve(l) }

// AttachSwitch handshakes one switch control channel directly (useful
// with in-memory pipes and tests).
func (c *Controller) AttachSwitch(rw io.ReadWriter) error {
	_, err := c.d.Attach(rw)
	return err
}

// Driver exposes the driver layer (protocol version policy, fastpath
// hook).
func (c *Controller) Driver() *driver.Driver { return c.d }

// Namespaces returns the namespace manager (view isolation, cgroups).
func (c *Controller) Namespaces() *namespace.Manager { return c.ns }

// Launch enters a namespace and returns the Proc an application should
// use for all its file I/O.
func (c *Controller) Launch(ns Namespace) (*Proc, error) { return c.ns.Launch(ns) }

// Close stops all switch connections.
func (c *Controller) Close() { c.d.Close() }

// Shell returns a coreutils environment over the controller's file
// system, writing command output to out.
func (c *Controller) Shell(out io.Writer) *shell.Env {
	return shell.NewEnv(c.Root(), out)
}

// Fastpath returns a libyanc client: batched atomic flow writes without
// per-field file I/O (§8.1).
func (c *Controller) Fastpath() *libyanc.Client { return libyanc.New(c.y) }

// NewPacketRing installs a zero-copy packet-in ring as the fastpath event
// channel: packet-ins are published to the ring instead of being copied
// into event directories. Pass capacity 0 for the 4096 default.
func (c *Controller) NewPacketRing(capacity int) *libyanc.Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	ring := libyanc.NewRing(capacity)
	c.d.PacketInHook = func(sw string, pi *openflow.PacketIn) bool {
		ring.Publish(libyanc.PacketInMsg{Switch: sw, PI: pi})
		return true
	}
	return ring
}

// ExportDFS starts serving the controller's file system over TCP so
// other machines can mount it (§6). It returns the bound address.
func (c *Controller) ExportDFS(addr string) (string, *dfs.Server, error) {
	s := dfs.NewServer(c.y.VFS())
	bound, err := s.Listen(addr)
	if err != nil {
		return "", nil, err
	}
	c.proc.BindDFSServer(s)
	return bound, s, nil
}

// ReplicaOptions configures one member of a replicated dfs control
// plane: its index in the member list, the full address list, the
// lease/election timing, and the transport hooks.
type ReplicaOptions = dfs.ReplicaOptions

// ExportDFSReplica serves the controller's file system as one member of
// a replicated dfs group (§6): the replicas elect a lease-bounded
// leader, strict writes commit on a majority, and clients mounted with
// MountDFSReplicas fail over between members. The member listens on
// opts.Addrs[opts.ID]; the bound address is returned. The replica's
// consensus state appears in /.proc/dfs/replication.
func (c *Controller) ExportDFSReplica(opts ReplicaOptions) (string, *dfs.Replica, error) {
	r, err := dfs.NewReplica(c.y.VFS(), opts)
	if err != nil {
		return "", nil, err
	}
	bound, err := r.Listen(opts.Addrs[opts.ID])
	if err != nil {
		return "", nil, err
	}
	r.Start()
	c.proc.BindDFSServer(r.Server())
	c.proc.BindReplica(r)
	return bound, r, nil
}

// MountDFSReplicas mounts a replicated export by its full member list:
// the mount follows the leader across failovers, replays watches and
// pending writes, and deduplicates replayed writes server-side so a
// flow pushed mid-failover is applied exactly once.
func MountDFSReplicas(addrs []string, cred Cred, consistency dfs.Consistency, opts DFSOptions) (*dfs.Client, error) {
	return dfs.MountReplicas(addrs, cred, consistency, opts)
}

// BindMount registers a remote mount under name so its queue and
// reconnect state appear in /.proc/dfs/{queue,reconnects}. Call
// UnbindMount after closing the client.
func (c *Controller) BindMount(name string, client *dfs.Client) {
	c.proc.BindDFSClient(name, client)
}

// UnbindMount removes a mount from the metrics registry.
func (c *Controller) UnbindMount(name string) {
	c.proc.UnbindDFSClient(name)
}

// DFSOptions tunes a remote mount's failure behaviour: per-RPC
// deadlines, automatic reconnection with backoff, and the bound on the
// eventual-consistency write queue.
type DFSOptions = dfs.Options

// MountDFS mounts a remote controller's file system.
func MountDFS(addr string, cred Cred, consistency dfs.Consistency) (*dfs.Client, error) {
	return dfs.Mount(addr, cred, consistency)
}

// MountDFSOptions mounts a remote controller's file system with explicit
// resilience options. With Reconnect set, the mount survives server
// restarts: strict calls fail fast while the server is down, eventual
// writes queue, and on recovery the mount replays its consistency
// overrides, re-registers watches (each receives a synthetic Overflow
// event marking the gap), and flushes the queue.
func MountDFSOptions(addr string, cred Cred, consistency dfs.Consistency, opts DFSOptions) (*dfs.Client, error) {
	return dfs.MountOptions(addr, cred, consistency, opts)
}

// WriteFlow writes and commits a flow through ordinary file I/O.
func WriteFlow(p *Proc, flowPath string, spec FlowSpec) (uint64, error) {
	return yancfs.WriteFlow(p, flowPath, spec)
}

// ReadFlow parses a flow directory.
func ReadFlow(p *Proc, flowPath string) (FlowSpec, error) {
	return yancfs.ReadFlow(p, flowPath)
}

// ParseMatch parses "field=value,..." into a Match.
func ParseMatch(spec string) (Match, error) { return openflow.ParseMatch(spec) }

// ParseActions parses "out=2,set_nw_tos=4" into an action list.
func ParseActions(spec string) ([]Action, error) { return openflow.ParseActions(spec) }

// Output builds an output action.
func Output(port uint32) Action { return openflow.Output(port) }

// Subscribe creates an application's private packet-in buffer (§3.5).
func Subscribe(p *Proc, region, app string) (string, *Watch, error) {
	return yancfs.Subscribe(p, region, app)
}

// System applications (§4, §8), constructed over any region.

// NewTopod creates the LLDP topology discovery daemon.
func NewTopod(p *Proc, region string) *apps.Topod { return apps.NewTopod(p, region) }

// NewRouter creates the reactive exact-match router daemon.
func NewRouter(p *Proc, region string) *apps.Router { return apps.NewRouter(p, region) }

// NewARPd creates the ARP responder daemon.
func NewARPd(p *Proc, region string) *apps.ARPd { return apps.NewARPd(p, region) }

// NewDHCPd creates the DHCP daemon serving `count` addresses starting at
// start; leases are files under <region>/services/dhcp/leases.
func NewDHCPd(p *Proc, region string, start ethernet.IP4, count int) *apps.DHCPd {
	return apps.NewDHCPd(p, region, start, count)
}

// NewFlowPusher creates the static flow pusher.
func NewFlowPusher(p *Proc, region string) *apps.FlowPusher { return apps.NewFlowPusher(p, region) }

// NewAuditor creates the cron-style policy auditor.
func NewAuditor(p *Proc, region string) *apps.Auditor { return apps.NewAuditor(p, region) }

// NewSlicer creates a header-space slice over member switches (§4.2).
func (c *Controller) NewSlicer(region, name string, filter Match, switches []string) *apps.Slicer {
	return apps.NewSlicer(c.y, region, name, filter, switches)
}

// NewBigSwitch creates a single-big-switch virtualization view (§4.2).
func (c *Controller) NewBigSwitch(region, name string, portMap map[uint32]apps.PortRef) *apps.BigSwitch {
	return apps.NewBigSwitch(c.y, region, name, portMap)
}

// NewMiddlebox creates a stateful-firewall middlebox whose connection
// state and policy live in the file system under
// <region>/middleboxes/<name> (§7.2). Start the returned driver to begin
// the two-way sync; migrate live state between middleboxes with cp/mv.
func (c *Controller) NewMiddlebox(region, name string) (*middlebox.Engine, *middlebox.Driver) {
	engine := middlebox.NewEngine(name)
	return engine, middlebox.NewDriver(c.y, region, engine)
}

// PortRef names a physical (switch, port) pair for virtualization maps.
type PortRef = apps.PortRef
