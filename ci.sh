#!/bin/sh
# ci.sh - the repo's verification gate: formatting, static analysis
# (go vet plus the yancvet lock/clock/error invariant suite), the
# full test suite under the race detector, a doubled run of the
# concurrency stress/chaos battery, a benchmark smoke pass (every
# benchmark runs one iteration, so a broken rig fails CI even when no
# one is measuring), the E14 multicore scaling gate (fails the build
# if 4 workers are slower than 1 on a 4+-core machine), the E15
# zero-copy fan-out gate (fails if delivering to 8 subscribers costs
# more than 2x delivering to 1), and the E16 replication gate (fails
# if a partitioned or killed leader loses or duplicates an
# acknowledged write, or if failover convergence exceeds its budget),
# and the E17 churn gate (64 TCP switches under flow-dir churn: fails
# if any tracked create/modify never reaches its switch or the
# create→installed p99 collapses; skipped below 4 cores, where the
# unthrottled burst is all scheduler queueing), and the E18 ring gate
# (fails if the libyanc submission ring's bulk flow push drops below
# 5x the file-I/O path at the quick sizes, or if a fanned-out
# packet-out stages more than one copy of the frame; skipped below 4
# cores, where wall-clock ratios are hypervisor-steal noise).
# Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(find . -name '*.go' -not -path './vendor/*' -print0 | xargs -0 gofmt -l)
if [ -n "$unformatted" ]; then
    echo "FAIL: gofmt: the following files need 'gofmt -w':" >&2
    echo "$unformatted" | sed 's/^/    /' >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> yancvet (lockorder/lockpair/snapshotpub/clockban/atomicfield/errdrop/hotalloc/txescape/waitgraph)"
go run ./cmd/yancvet ./...

# The -json artifact leg: machine-readable findings, diffed against the
# committed baseline so a finding can neither appear nor silently vanish
# without a deliberate baseline update in the same commit. The baseline
# holds normalized "posn" lines (paths relative to the repo root,
# sorted); today it is empty because the tree vets clean.
echo "==> yancvet -json artifact (diff against vet_baseline.json)"
vet_raw=$(mktemp)
vet_posns=$(mktemp)
go run ./cmd/yancvet -json ./... >"$vet_raw" 2>&1 || true
grep -o '"posn": "[^"]*"' "$vet_raw" | sed "s|$(pwd)/||g" | LC_ALL=C sort >"$vet_posns" || true
if ! diff -u vet_baseline.json "$vet_posns"; then
    echo "FAIL: yancvet findings drifted from vet_baseline.json (left: committed baseline, right: this tree)." >&2
    echo "      Fix the findings, or update the baseline deliberately in the same commit." >&2
    rm -f "$vet_raw" "$vet_posns"
    exit 1
fi
rm -f "$vet_raw" "$vet_posns"

echo "==> go test -race"
go test -race ./...

echo "==> go test -race concurrency battery (Stress|Chaos|Alloc, -count=2)"
go test -race -run 'Stress|Chaos|Alloc' -count=2 ./...

echo "==> go test -bench (smoke, 1 iteration)"
go test -bench=. -benchtime=1x -run='^$' ./...

echo "==> E14 smoke (multicore scaling sanity gate)"
go run ./cmd/yancbench -run E14 -quick -gate

echo "==> E15 smoke (zero-copy fan-out gate: 8 subscribers <= 2x 1)"
go run ./cmd/yancbench -run E15 -quick -gate

echo "==> E16 smoke (replication gate: failover loses nothing, applies once)"
go run ./cmd/yancbench -run E16 -quick -gate

if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ]; then
    echo "==> E17 smoke (churn gate: zero lost installs, p99 within budget)"
    go run ./cmd/yancbench -run E17 -quick -gate
    echo "==> E18 smoke (ring gate: bulk push >= 5x file I/O, one staged packet-out copy)"
    go run ./cmd/yancbench -run E18 -quick -gate
else
    echo "==> E17 smoke: skipped (<4 cores)"
    echo "==> E18 smoke: skipped (<4 cores)"
fi

echo "==> ok"
