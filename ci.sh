#!/bin/sh
# ci.sh - the repo's verification gate: formatting, static analysis, the
# full test suite under the race detector, and a benchmark smoke pass
# (every benchmark runs one iteration, so a broken rig fails CI even
# when no one is measuring). Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "FAIL: gofmt: the following files need 'gofmt -w':" >&2
    echo "$unformatted" | sed 's/^/    /' >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go test -race"
go test -race ./...

echo "==> go test -bench (smoke, 1 iteration)"
go test -bench=. -benchtime=1x -run='^$' ./...

echo "==> ok"
