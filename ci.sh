#!/bin/sh
# ci.sh - the repo's verification gate: formatting, static analysis, and
# the full test suite under the race detector. Run before every push.
set -eu
cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go test -race"
go test -race ./...

echo "==> ok"
