package yanc

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"yanc/internal/openflow"
	"yanc/internal/switchsim"
)

// startNetwork connects a simulated linear network to the controller over
// real TCP and registers hosts.
func startNetwork(t *testing.T, ctrl *Controller, k int) (*switchsim.Network, []*switchsim.Host) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ctrl.Serve(ln) }()
	t.Cleanup(func() { ln.Close() })
	n, hosts := switchsim.BuildLinear(k, openflow.Version10)
	for _, sw := range n.Switches() {
		sw := sw
		go func() { _ = sw.Dial(ln.Addr().String()) }()
	}
	p := ctrl.Root()
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, _ := p.ReadDir("/switches")
		if len(entries) == k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d switches attached", len(entries), k)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Driver telemetry registers after the switch subtree appears; tests
	// that list /.proc/driver right away must not race that last step.
	for {
		entries, _ := p.ReadDir("/.proc/driver")
		if len(entries) >= k {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d driver telemetry dirs registered", len(entries), k)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, h := range hosts {
		dpid, port := h.Attachment()
		sh := ctrl.Shell(nil)
		_ = sh
		if err := p.MkdirAll("/hosts/"+h.Name, 0o755); err != nil {
			t.Fatal(err)
		}
		for file, val := range map[string]string{
			"mac":    h.MAC.String(),
			"ip":     h.IP.String(),
			"switch": n.Switch(dpid).Name,
			"port":   itoa(int(port)),
		} {
			if err := p.WriteString("/hosts/"+h.Name+"/"+file, val+"\n"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return n, hosts
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestEndToEndOverTCP(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	n, hosts := startNetwork(t, ctrl, 3)
	_ = n
	p := ctrl.Root()

	// Topology discovery, then the reactive router.
	td := NewTopod(p, "/")
	if err := td.DiscoverOnce(); err != nil {
		t.Fatal(err)
	}
	td.Stop()
	rt := NewRouter(p, "/")
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()

	hosts[2].ClearReceived()
	hosts[0].Ping(hosts[2], 1)
	if !hosts[2].WaitFor(func([][]byte) bool { return hosts[2].ReceivedPing(1) }, 5*time.Second) {
		t.Fatal("end-to-end ping failed")
	}

	// The administrator inspects state with coreutils.
	var out strings.Builder
	sh := ctrl.Shell(&out)
	if err := sh.Run("ls /switches"); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "sw1\nsw2\nsw3\n" {
		t.Errorf("ls = %q", got)
	}
	out.Reset()
	if err := sh.Run("find /switches -name peer -type l | wc -l"); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "4" {
		t.Errorf("peer links = %q", out.String())
	}
}

func TestPublicAPIFlowHelpers(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	p := ctrl.Root()
	if err := p.Mkdir("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMatch("dl_type=0x0800,tp_dst=443,nw_proto=6")
	if err != nil {
		t.Fatal(err)
	}
	actions, err := ParseActions("set_nw_tos=16,out=2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := WriteFlow(p, "/switches/sw1/flows/https", FlowSpec{Match: m, Priority: 9, Actions: actions})
	if err != nil || v != 1 {
		t.Fatalf("WriteFlow = %d %v", v, err)
	}
	spec, err := ReadFlow(p, "/switches/sw1/flows/https")
	if err != nil || !spec.Match.Equal(m) || spec.Priority != 9 {
		t.Fatalf("ReadFlow = %+v %v", spec, err)
	}
	// The fastpath produces the same result.
	if _, err := ctrl.Fastpath().PutFlow("/switches/sw1/flows/fast", spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlow(p, "/switches/sw1/flows/fast")
	if err != nil || !got.Match.Equal(m) {
		t.Fatalf("fastpath flow = %+v %v", got, err)
	}
}

func TestNamespaceLaunchIsolation(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	root := ctrl.Root()
	if err := root.Mkdir("/views/tenant", 0o755); err != nil {
		t.Fatal(err)
	}
	g := ctrl.Namespaces().CreateGroup("tenant", Limits{MaxOps: 100})
	p, err := ctrl.Launch(Namespace{
		Name:  "tenant-app",
		Cred:  Cred{UID: 2000, GID: 2000},
		Root:  "/views/tenant",
		Group: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Exists("/switches/anything") {
		t.Error("tenant sees master region")
	}
	// Accounting runs.
	_ = p.Exists("/switches")
	if g.Usage().Ops == 0 {
		t.Error("control group not metering")
	}
}

func TestPacketRingFastpath(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	ring := ctrl.NewPacketRing(0)
	cur := ring.NewCursor()
	_, hosts := startNetwork(t, ctrl, 1)
	// Subscribe a slow-path app too: it must NOT receive anything while
	// the ring consumes events.
	_, w, err := Subscribe(ctrl.Root(), "/", "slowpath")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	hosts[0].Ping(hosts[0], 1) // self-ping still misses and packet-ins
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m, ok := cur.Next(false); ok {
			if m.Switch != "sw1" {
				t.Errorf("ring msg = %+v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ring never received the packet-in")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case ev := <-w.C:
		t.Errorf("slow path received %+v despite fastpath", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestExportAndMountDFS(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	if err := ctrl.Root().Mkdir("/switches/sw1", 0o755); err != nil {
		t.Fatal(err)
	}
	addr, srv, err := ctrl.ExportDFS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := MountDFS(addr, Root, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	entries, err := remote.ReadDir("/switches")
	if err != nil || len(entries) != 1 || entries[0].Name != "sw1" {
		t.Fatalf("remote readdir = %v %v", entries, err)
	}
}

func TestProcMetricsLocalAndRemote(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	_, _ = startNetwork(t, ctrl, 2)

	// Locally, the metrics are plain files for the shell.
	var out bytes.Buffer
	sh := ctrl.Shell(&out)
	if err := sh.Run("cat /.proc/vfs/ops"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total") {
		t.Fatalf("shell cat /.proc/vfs/ops:\n%s", out.String())
	}
	out.Reset()
	if err := sh.Run("ls /.proc/driver"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sw1") {
		t.Fatalf("driver telemetry missing:\n%s", out.String())
	}

	// Remotely, the same files are readable through a dfs mount, and the
	// mount itself shows up in the metrics once bound.
	addr, srv, err := ctrl.ExportDFS("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := MountDFS(addr, Root, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctrl.BindMount("peer", remote)

	lat, err := remote.ReadFile("/.proc/vfs/latency")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lat), "p99") {
		t.Fatalf("remote latency read:\n%s", lat)
	}
	rec, err := remote.ReadFile("/.proc/dfs/reconnects")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rec), "peer: up") {
		t.Fatalf("mount not visible in metrics:\n%s", rec)
	}
	rpc, err := remote.ReadFile("/.proc/dfs/rpc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rpc), "export 0:") {
		t.Fatalf("export not visible in metrics:\n%s", rpc)
	}

	// Per-app accounting appears once a namespace launches.
	if _, err := ctrl.Launch(Namespace{Name: "probe", Cred: Root}); err != nil {
		t.Fatal(err)
	}
	app, err := remote.ReadFile("/.proc/apps/probe")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(app), "name probe") {
		t.Fatalf("app accounting:\n%s", app)
	}

	ctrl.UnbindMount("peer")
}
