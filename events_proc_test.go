package yanc

import (
	"fmt"
	"strings"
	"testing"

	"yanc/internal/openflow"
	"yanc/internal/yancfs"
)

// TestProcEventsMetrics drives packet-in deliveries through a controller
// and asserts the event data path's accounting through the real
// /.proc/events files: counters move, linked bytes dominate copied bytes
// with many subscribers, the batch histogram fills, per-app rows appear,
// and blocks_live drains back to zero once every copy is consumed.
func TestProcEventsMetrics(t *testing.T) {
	ctrl, err := NewController()
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	p := ctrl.Root()

	read := func(path string) string {
		t.Helper()
		b, err := p.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return string(b)
	}
	field := func(text, key string) string {
		for _, line := range strings.Split(text, "\n") {
			if f := strings.Fields(line); len(f) == 2 && f[0] == key {
				return f[1]
			}
		}
		t.Fatalf("no %q in:\n%s", key, text)
		return ""
	}

	if got := read("/.proc/events/stats"); field(got, "messages") != "0" {
		t.Fatalf("fresh controller stats:\n%s", got)
	}

	const subs = 4
	var bufs []string
	for i := 0; i < subs; i++ {
		buf, w, err := yancfs.Subscribe(p, "/", fmt.Sprintf("app%d", i))
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		bufs = append(bufs, buf)
	}
	batch := make([]*openflow.PacketIn, 8)
	for i := range batch {
		batch[i] = &openflow.PacketIn{InPort: 1, TotalLen: 512, Data: make([]byte, 512)}
	}
	if err := ctrl.FS().DeliverPacketInBatch("/", "sw1", batch); err != nil {
		t.Fatal(err)
	}

	stats := read("/.proc/events/stats")
	if field(stats, "messages") != "8" || field(stats, "deliveries") != "32" {
		t.Fatalf("counters after one batch of 8 x %d subs:\n%s", subs, stats)
	}
	var copied, linked int
	fmt.Sscan(field(stats, "copied_bytes"), &copied)
	fmt.Sscan(field(stats, "linked_bytes"), &linked)
	if copied == 0 || linked <= copied {
		t.Fatalf("zero-copy accounting: copied=%d linked=%d\n%s", copied, linked, stats)
	}
	if field(stats, "blocks_live") != "8" {
		t.Fatalf("blocks_live:\n%s", stats)
	}

	if got := read("/.proc/events/batch"); !strings.Contains(got, "<=8") {
		t.Fatalf("batch histogram:\n%s", got)
	}
	apps := read("/.proc/events/apps")
	if strings.Count(apps, "/events/") != subs || !strings.Contains(apps, "app0") {
		t.Fatalf("per-app rows:\n%s", apps)
	}

	// Consume everything everywhere: the shared payload blocks must be
	// reclaimed, and /.proc/events must say so.
	for _, buf := range bufs {
		msgs, err := yancfs.PendingEvents(p, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			if _, err := yancfs.ConsumePacketIn(p, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats = read("/.proc/events/stats")
	if field(stats, "blocks_live") != "0" || field(stats, "bytes_live") != "0" {
		t.Fatalf("stranded blocks after full consume:\n%s", stats)
	}
}
