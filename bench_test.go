package yanc

// Benchmarks regenerating the experiment series of EXPERIMENTS.md. Each
// benchmark corresponds to an experiment id in DESIGN.md §4; cmd/yancbench
// prints the same series as tables. Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"testing"
	"time"

	"yanc/internal/apps"
	"yanc/internal/benchutil"
	"yanc/internal/dfs"
	"yanc/internal/libyanc"
	"yanc/internal/openflow"
	"yanc/internal/vfs"
	"yanc/internal/yancfs"
)

// BenchmarkE1SemanticMkdir measures typed object creation: one mkdir()
// materializing the whole switch skeleton (§3.1).
func BenchmarkE1SemanticMkdir(b *testing.B) {
	y, err := yancfs.New()
	if err != nil {
		b.Fatal(err)
	}
	p := y.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Mkdir(fmt.Sprintf("/switches/s%d", i), 0o755); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2FlowCommit measures a full stage-and-commit flow write
// through file I/O (§3.4).
func BenchmarkE2FlowCommit(b *testing.B) {
	y, err := benchutil.NewFSOnlyRig(1)
	if err != nil {
		b.Fatal(err)
	}
	p := y.Root()
	spec := benchutil.SampleFlowSpec(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yancfs.WriteFlow(p, fmt.Sprintf("/switches/sw1/flows/f%d", i), spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3PacketInFanout measures event-directory fan-out per
// subscriber count (§3.5).
func BenchmarkE3PacketInFanout(b *testing.B) {
	for _, subs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("apps-%d", subs), func(b *testing.B) {
			y, err := yancfs.New()
			if err != nil {
				b.Fatal(err)
			}
			p := y.Root()
			for i := 0; i < subs; i++ {
				if _, _, err := yancfs.Subscribe(p, "/", fmt.Sprintf("app%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			pi := &openflow.PacketIn{InPort: 1, TotalLen: 128, Data: make([]byte, 128)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The batched form the driver's coalescing loop actually calls:
		// one transaction and one watch drain per burst of 8.
		b.Run(fmt.Sprintf("apps-%d-batch8", subs), func(b *testing.B) {
			y, err := yancfs.New()
			if err != nil {
				b.Fatal(err)
			}
			p := y.Root()
			for i := 0; i < subs; i++ {
				if _, _, err := yancfs.Subscribe(p, "/", fmt.Sprintf("app%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			batch := make([]*openflow.PacketIn, 8)
			for i := range batch {
				batch[i] = &openflow.PacketIn{InPort: 1, TotalLen: 128, Data: make([]byte, 128)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += len(batch) {
				if err := y.DeliverPacketInBatch("/", "sw1", batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4DriverTranslate measures wire encode+decode per protocol
// version (§4.1).
func BenchmarkE4DriverTranslate(b *testing.B) {
	spec := benchutil.SampleFlowSpec(7)
	fm := &openflow.FlowMod{
		Command: openflow.FlowAdd, Match: spec.Match, Priority: spec.Priority,
		BufferID: openflow.NoBuffer, OutPort: openflow.PortAny, Actions: spec.Actions,
		Header: openflow.Header{Xid: 1},
	}
	for _, tc := range []struct {
		name  string
		codec openflow.Codec
	}{
		{"of10", openflow.Codec10{}},
		{"of13", openflow.Codec13{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc, err := tc.codec.Encode(fm)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tc.codec.Decode(enc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5ViewTranslation measures a flow write through a slicer view
// until the master twin commits (§4.2).
func BenchmarkE5ViewTranslation(b *testing.B) {
	y, err := benchutil.NewFSOnlyRig(1)
	if err != nil {
		b.Fatal(err)
	}
	p := y.Root()
	filter, _ := openflow.ParseMatch("dl_type=0x0800,nw_proto=6")
	sl := apps.NewSlicer(y, "/", "bench", filter, []string{"sw1"})
	if err := sl.Create(); err != nil {
		b.Fatal(err)
	}
	if err := sl.Start(); err != nil {
		b.Fatal(err)
	}
	defer sl.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/views/bench/switches/sw1/flows/v%d", i)
		if _, err := yancfs.WriteFlow(p, path, benchutil.SampleFlowSpec(i)); err != nil {
			b.Fatal(err)
		}
		master := fmt.Sprintf("/switches/sw1/flows/slice-bench-v%d", i)
		for {
			if v, err := yancfs.FlowVersion(p, master); err == nil && v >= 1 {
				break
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// BenchmarkE6Discovery measures one full LLDP discovery round on an
// 8-switch line (§4.3).
func BenchmarkE6Discovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, err := benchutil.NewLinearRig(8, openflow.Version10)
		if err != nil {
			b.Fatal(err)
		}
		td := apps.NewTopod(r.Y.Root(), "/")
		b.StartTimer()
		if err := td.DiscoverOnce(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		td.Stop()
		r.Close()
		b.StartTimer()
	}
}

// BenchmarkE8Watch measures the marginal cost a watch adds to a write
// (§5.2).
func BenchmarkE8Watch(b *testing.B) {
	for _, watched := range []bool{false, true} {
		name := "unwatched"
		if watched {
			name = "watched"
		}
		b.Run(name, func(b *testing.B) {
			fs := vfs.New()
			p := fs.RootProc()
			if err := p.Mkdir("/d", 0o755); err != nil {
				b.Fatal(err)
			}
			if watched {
				w, err := p.AddWatch("/d", vfs.OpWrite, vfs.BufferSize(64))
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				go func() {
					for range w.C {
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.WriteString("/d/f", "x"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Distributed measures remote operations through the
// distributed file system per consistency mode (§6).
func BenchmarkE10Consistency(b *testing.B) {
	for _, mode := range []dfs.Consistency{dfs.Strict, dfs.Eventual} {
		b.Run(mode.String(), func(b *testing.B) {
			y, err := yancfs.New()
			if err != nil {
				b.Fatal(err)
			}
			srv := dfs.NewServer(y.VFS())
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			c, err := dfs.Mount(addr, vfs.Root, mode)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteString(fmt.Sprintf("/hosts/h%d", i), "x"); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := c.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkE10Distributed measures parallel remote reads through
// concurrent mounts (§6's distributed workload).
func BenchmarkE10Distributed(b *testing.B) {
	y, err := benchutil.NewFSOnlyRig(8)
	if err != nil {
		b.Fatal(err)
	}
	srv := dfs.NewServer(y.VFS())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			clients := make([]*dfs.Client, workers)
			for i := range clients {
				c, err := dfs.Mount(addr, vfs.Root, dfs.Strict)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[i] = c
			}
			b.ResetTimer()
			done := make(chan struct{}, workers)
			per := b.N/workers + 1
			for _, c := range clients {
				go func(c *dfs.Client) {
					for i := 0; i < per; i++ {
						if _, err := c.ReadDir("/switches"); err != nil {
							b.Error(err)
							break
						}
					}
					done <- struct{}{}
				}(c)
			}
			for range clients {
				<-done
			}
		})
	}
}

// BenchmarkE11ReactiveSetup measures the full reactive path: table miss
// at the simulated switch, router consumes the event, installs the path
// through file writes, packet delivered (§8).
func BenchmarkE11ReactiveSetup(b *testing.B) {
	r, err := benchutil.NewLinearRig(3, openflow.Version10)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	td := apps.NewTopod(r.Y.Root(), "/")
	if err := td.DiscoverOnce(); err != nil {
		b.Fatal(err)
	}
	td.Stop()
	rt := apps.NewRouter(r.Y.Root(), "/")
	rt.IdleTimeout = 0 // flows persist; each iteration uses a new flow id
	if err := rt.Start(); err != nil {
		b.Fatal(err)
	}
	defer rt.Stop()
	h1, h3 := r.Hosts[0], r.Hosts[2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A distinct TCP source port per iteration forces a fresh miss.
		h1.SendTCP(h3, uint16(1024+i%60000), 80, nil)
		want := i + 1
		if !h3.WaitFor(func(frames [][]byte) bool { return len(frames) >= want }, 10*time.Second) {
			b.Fatalf("packet %d lost", i)
		}
	}
}

// BenchmarkE12FlowPushScale measures the §8.1 headline: pushing one flow
// to each of N switches through per-field file I/O; b.ReportMetric
// carries the counted syscalls per switch.
func BenchmarkE12FlowPushScale(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("switches-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				y, err := benchutil.NewFSOnlyRig(k)
				if err != nil {
					b.Fatal(err)
				}
				p := y.Root()
				before := y.VFS().Stats().Total()
				b.StartTimer()
				for s := 1; s <= k; s++ {
					if _, err := yancfs.WriteFlow(p, fmt.Sprintf("/switches/sw%d/flows/f", s), benchutil.SampleFlowSpec(s)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				ops := y.VFS().Stats().Total() - before
				b.ReportMetric(float64(ops)/float64(k), "syscalls/switch")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE13LibyancFlow is the same workload through the libyanc batch
// fastpath — near-zero counted syscalls (§8.1).
func BenchmarkE13LibyancFlow(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("switches-%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				y, err := benchutil.NewFSOnlyRig(k)
				if err != nil {
					b.Fatal(err)
				}
				before := y.VFS().Stats().Total()
				batch := libyanc.New(y).NewBatch()
				for s := 1; s <= k; s++ {
					batch.Put(fmt.Sprintf("/switches/sw%d/flows/f", s), benchutil.SampleFlowSpec(s))
				}
				b.StartTimer()
				if err := batch.Commit(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				ops := y.VFS().Stats().Total() - before
				b.ReportMetric(float64(ops)/float64(k), "syscalls/switch")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE13ZeroCopyPacketIn measures the fastpath packet-in ring
// against the event-directory copy path it replaces (§8.1).
func BenchmarkE13ZeroCopyPacketIn(b *testing.B) {
	data := make([]byte, 1500)
	b.Run("ring", func(b *testing.B) {
		ring := libyanc.NewRing(4096)
		cur := ring.NewCursor()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ring.Publish(libyanc.PacketInMsg{Switch: "sw1", PI: &openflow.PacketIn{Data: data}})
			if _, ok := cur.Next(false); !ok {
				b.Fatal("ring empty")
			}
		}
	})
	b.Run("event-dirs", func(b *testing.B) {
		y, err := yancfs.New()
		if err != nil {
			b.Fatal(err)
		}
		p := y.Root()
		buf, _, err := yancfs.Subscribe(p, "/", "app")
		if err != nil {
			b.Fatal(err)
		}
		pi := &openflow.PacketIn{Data: data}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
				b.Fatal(err)
			}
			msgs, err := yancfs.PendingEvents(p, buf)
			if err != nil || len(msgs) != 1 {
				b.Fatal("no event")
			}
			if _, err := yancfs.ConsumePacketIn(p, msgs[0]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14ConcurrentApps measures aggregate multicore throughput of
// the mixed app workload (flow rewrite+commit, switch stat, flow-table
// list, periodic packet-in) at increasing worker counts (§8.2). The
// cmd/yancbench E14 runner prints the same series as ops/s with the
// speedup gate; here b.N operations are split evenly across workers so
// ns/op reflects the per-op cost under contention.
func BenchmarkE14ConcurrentApps(b *testing.B) {
	pi := &openflow.PacketIn{InPort: 1, TotalLen: 64, Data: make([]byte, 64)}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			y, err := benchutil.NewFSOnlyRig(8)
			if err != nil {
				b.Fatal(err)
			}
			p := y.Root()
			_, w, err := yancfs.Subscribe(p, "/", "e14app")
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			go func() {
				for range w.C {
				}
			}()
			for i := 0; i < workers; i++ {
				flow := fmt.Sprintf("/switches/sw%d/flows/app%d", 1+i%8, i)
				if _, err := yancfs.WriteFlow(p, flow, benchutil.SampleFlowSpec(i)); err != nil {
					b.Fatal(err)
				}
			}
			per := b.N/workers + 1
			done := make(chan struct{}, workers)
			b.ResetTimer()
			for i := 0; i < workers; i++ {
				go func(wid int) {
					defer func() { done <- struct{}{} }()
					sw := fmt.Sprintf("/switches/sw%d", 1+wid%8)
					flow := fmt.Sprintf("%s/flows/app%d", sw, wid)
					for n := 0; n < per; n++ {
						if err := p.WriteString(flow+"/match.nw_src", fmt.Sprintf("10.0.%d.%d\n", wid, n%250)); err != nil {
							b.Error(err)
							return
						}
						if _, err := yancfs.CommitFlow(p, flow); err != nil {
							b.Error(err)
							return
						}
						if _, err := p.Stat(sw + "/id"); err != nil {
							b.Error(err)
							return
						}
						if _, err := p.ReadDir(sw + "/flows"); err != nil {
							b.Error(err)
							return
						}
						if n%32 == 0 {
							if err := y.DeliverPacketIn("/", "sw1", pi); err != nil {
								b.Error(err)
								return
							}
						}
					}
				}(i)
			}
			for i := 0; i < workers; i++ {
				<-done
			}
		})
	}
}

// BenchmarkVFSPathWalk is the supporting ablation for path resolution
// cost at increasing depth.
func BenchmarkVFSPathWalk(b *testing.B) {
	fs := vfs.New()
	p := fs.RootProc()
	deep := "/a/b/c/d/e/f/g/h"
	if err := p.MkdirAll(deep, 0o755); err != nil {
		b.Fatal(err)
	}
	if err := p.WriteString(deep+"/file", "x"); err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct{ name, path string }{
		{"depth-1", "/a"},
		{"depth-8", deep + "/file"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Stat(tc.path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
